//! The deterministic load + chaos harness behind `lahd serve-bench`.
//!
//! Two phases against a running daemon:
//!
//! 1. **Chaos phase** (lockstep): `rounds` rounds of one decision per
//!    stream, collected round-by-round, with an optional [`ChaosPlan`]
//!    firing mid-run — kill a shard worker, hold a shard while bursting
//!    `burst_factor ×` load at it (exercising admission control and a
//!    deadline miss deterministically), and offer a corrupt artifact
//!    bundle for hot reload. The phase's summary contains only
//!    run-invariant facts (request/response totals, recovery booleans, a
//!    checksum of every pre-chaos action), so a same-seed re-run against a
//!    fresh daemon produces a byte-identical chaos JSON — the property the
//!    acceptance test pins.
//! 2. **Perf phase** (open loop): `requests` decisions sent on schedule at
//!    `rate` requests/second (0 = as fast as possible) regardless of
//!    response progress, latencies recorded client-side into a log-bucket
//!    histogram. Reported decisions/sec and p50/p99/p999 feed the bench
//!    snapshot rows (`serve_throughput/…`, `serve_latency/…`).
//!
//! Observations are synthesised per `(stream, round)` from the artifact
//! directory's `baseline.profile` (uniform inside each dimension's
//! interquartile band), so the traffic looks healthy to the guards and is
//! a pure function of the bench seed.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use lahd_guard::BaselineProfile;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::client::ServeClient;
use crate::metrics::{LatencyHistogram, MetricsSnapshot};
use crate::persist;
use crate::protocol::{Request, Response, Source};

/// When chaos events fire, relative to the lockstep round counter.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// Round at which the target shard's worker is crashed.
    pub kill_round: u64,
    /// Shard whose worker is crashed (also the shard held during the
    /// burst).
    pub kill_shard: u32,
    /// Round at which the 10×-style burst fires.
    pub burst_round: u64,
    /// Load multiplier during the burst round.
    pub burst_factor: u64,
    /// How long the target shard is held (asleep) during the burst,
    /// milliseconds — this is what makes shedding deterministic.
    pub hold_ms: u32,
    /// Round at which the corrupt reload candidate is offered.
    pub reload_round: u64,
    /// Artifact directory of the (deliberately corrupt) reload candidate.
    pub corrupt_dir: PathBuf,
}

impl ChaosPlan {
    /// The standard plan: kill at ¼, burst 10× at ½, corrupt reload at ¾.
    pub fn standard(rounds: u64, corrupt_dir: PathBuf) -> Self {
        Self {
            kill_round: (rounds / 4).max(1),
            kill_shard: 0,
            burst_round: (rounds / 2).max(2),
            burst_factor: 10,
            hold_ms: 100,
            reload_round: (3 * rounds / 4).max(3),
            corrupt_dir,
        }
    }

    /// First round at which any chaos fires (the checksum covers rounds
    /// strictly before it).
    pub fn first_round(&self) -> u64 {
        self.kill_round.min(self.burst_round).min(self.reload_round)
    }

    fn describe(&self) -> String {
        format!(
            "kill shard {}@r{}, burst x{}@r{} (hold {}ms), corrupt-reload@r{}",
            self.kill_shard,
            self.kill_round,
            self.burst_factor,
            self.burst_round,
            self.hold_ms,
            self.reload_round
        )
    }
}

/// Harness parameters.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Number of concurrent streams.
    pub streams: u64,
    /// Lockstep rounds in the chaos phase (0 skips the phase).
    pub rounds: u64,
    /// Open-loop requests in the perf phase (0 skips the phase).
    pub requests: u64,
    /// Open-loop target rate, requests/second (0 = maximum).
    pub rate: f64,
    /// Per-request deadline in the perf phase, microseconds (0 = none).
    pub deadline_us: u64,
    /// Seed for observation synthesis.
    pub seed: u64,
    /// Optional chaos plan for the lockstep phase.
    pub chaos: Option<ChaosPlan>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            streams: 8,
            rounds: 40,
            requests: 2000,
            rate: 0.0,
            deadline_us: 0,
            seed: 7,
            chaos: None,
        }
    }
}

/// Run-invariant chaos-phase outcome; [`ChaosOutcome::to_json`] is the
/// byte-reproducible summary the acceptance test compares.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosOutcome {
    /// Echo of the bench seed.
    pub seed: u64,
    /// Echo of the stream count.
    pub streams: u64,
    /// Echo of the round count.
    pub rounds: u64,
    /// Human-readable plan description ("none" without a plan).
    pub plan: String,
    /// Requests sent in the phase.
    pub requests: u64,
    /// Responses received (must equal `requests`: shedding degrades, it
    /// never drops).
    pub responses: u64,
    /// FNV-1a over every pre-chaos `(round, stream, action)` triple.
    pub prechaos_checksum: u64,
    /// The daemon still answered a stats request after the phase.
    pub daemon_alive: bool,
    /// The killed shard's worker restarted and served guarded decisions
    /// again afterwards (vacuously true without a plan).
    pub shard_recovered: bool,
    /// The corrupt reload candidate was rejected (vacuously true without a
    /// plan).
    pub reload_rejected: bool,
    /// The bundle generation did not change across the phase.
    pub generation_unchanged: bool,
    /// At least one burst request was shed to the fallback tier.
    pub shed_observed: bool,
    /// The deliberately-delayed request was answered from the fallback
    /// tier with the deadline label.
    pub deadline_fallback: bool,
}

impl ChaosOutcome {
    /// Stable-order JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"seed\":{},\"streams\":{},\"rounds\":{},\"plan\":\"{}\",",
                "\"requests\":{},\"responses\":{},\"prechaos_checksum\":\"{:#018x}\",",
                "\"daemon_alive\":{},\"shard_recovered\":{},\"reload_rejected\":{},",
                "\"generation_unchanged\":{},\"shed_observed\":{},\"deadline_fallback\":{}}}"
            ),
            self.seed,
            self.streams,
            self.rounds,
            self.plan,
            self.requests,
            self.responses,
            self.prechaos_checksum,
            self.daemon_alive,
            self.shard_recovered,
            self.reload_rejected,
            self.generation_unchanged,
            self.shed_observed,
            self.deadline_fallback
        )
    }

    /// Whether every robustness property held.
    pub fn all_good(&self) -> bool {
        self.responses == self.requests
            && self.daemon_alive
            && self.shard_recovered
            && self.reload_rejected
            && self.generation_unchanged
    }
}

/// Perf-phase outcome (wall-clock, not pinned).
#[derive(Clone, Debug)]
pub struct PerfOutcome {
    /// Requests driven.
    pub requests: u64,
    /// End-to-end decisions per second.
    pub decisions_per_sec: f64,
    /// Latency bucket upper bounds, nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile bucket, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile bucket, nanoseconds.
    pub p999_ns: u64,
    /// Requests shed during the phase.
    pub shed: u64,
    /// Requests answered from the deadline fallback during the phase.
    pub deadline_misses: u64,
    /// Decisions answered by each ladder tier, indexed `[fsm, quant,
    /// exact, baseline]` — tallied client-side from the `tier` byte on
    /// every [`Response::Decision`], so it reflects what the daemon
    /// actually served (the compiled FSM tier should dominate under
    /// healthy traffic).
    pub tier_decisions: [u64; 4],
}

impl PerfOutcome {
    /// Stable-order JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"requests\":{},\"decisions_per_sec\":{:.1},\"p50_ns\":{},",
                "\"p99_ns\":{},\"p999_ns\":{},\"shed\":{},\"deadline_misses\":{},",
                "\"tier_decisions\":{{\"fsm\":{},\"quant\":{},\"exact\":{},\"baseline\":{}}}}}"
            ),
            self.requests,
            self.decisions_per_sec,
            self.p50_ns,
            self.p99_ns,
            self.p999_ns,
            self.shed,
            self.deadline_misses,
            self.tier_decisions[0],
            self.tier_decisions[1],
            self.tier_decisions[2],
            self.tier_decisions[3]
        )
    }
}

/// Everything one `serve-bench` run produced.
pub struct BenchSummary {
    /// Lockstep chaos-phase outcome (None when `rounds == 0`).
    pub chaos: Option<ChaosOutcome>,
    /// Open-loop perf-phase outcome (None when `requests == 0`).
    pub perf: Option<PerfOutcome>,
}

impl BenchSummary {
    /// Combined JSON document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"chaos\":{},\"perf\":{}}}",
            self.chaos
                .as_ref()
                .map_or("null".to_string(), ChaosOutcome::to_json),
            self.perf
                .as_ref()
                .map_or("null".to_string(), PerfOutcome::to_json)
        )
    }

    /// Criterion-shim-style rows for `bench_snapshot.sh` folding. The
    /// throughput row stores decisions/sec (higher is better — the compare
    /// gate keys off the `per_sec` suffix); latency rows store
    /// nanoseconds.
    pub fn bench_rows(&self) -> Vec<String> {
        let Some(perf) = &self.perf else {
            return Vec::new();
        };
        vec![
            format!(
                "{{\"bench\":\"serve_throughput/decisions_per_sec\",\"median_ns\":{:.1}}}",
                perf.decisions_per_sec
            ),
            format!(
                "{{\"bench\":\"serve_latency/p50_ns\",\"median_ns\":{}}}",
                perf.p50_ns
            ),
            format!(
                "{{\"bench\":\"serve_latency/p99_ns\",\"median_ns\":{}}}",
                perf.p99_ns
            ),
            format!(
                "{{\"bench\":\"serve_latency/p999_ns\",\"median_ns\":{}}}",
                perf.p999_ns
            ),
        ]
    }
}

/// One measured point of the streams sweep: a self-hosted daemon sized for
/// `streams`, warmed with one decision per stream, then measured.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Requested concurrent stream count.
    pub streams: u64,
    /// Streams actually admitted (compact + resident + hibernated, from
    /// the daemon's sync-barriered gauges).
    pub admitted: u64,
    /// Closed-loop decisions/second over the timed round.
    pub decisions_per_sec: f64,
    /// Measured live heap bytes per admitted stream (counting allocator;
    /// 0 when the allocator is not installed — see [`crate::live_bytes`]).
    pub live_bytes_per_stream: u64,
    /// RSS growth across the warm, bytes (page-granular, informational).
    pub rss_delta_bytes: u64,
    /// RSS growth per admitted stream (informational).
    pub rss_bytes_per_stream: u64,
    /// Requests shed during the sweep (labelled answers, not errors).
    pub shed: u64,
    /// Gauge after warm: compact streams.
    pub compact: u64,
    /// Gauge after warm: resident (full-ladder) streams.
    pub resident: u64,
    /// Gauge after warm: hibernated streams.
    pub hibernated: u64,
}

/// The streams sweep a `lahd serve-bench --streams-sweep …` run produced.
#[derive(Clone, Debug, Default)]
pub struct StreamsSweep {
    /// One point per requested size, in request order.
    pub points: Vec<SweepPoint>,
}

/// Human row label for a stream count (1000 → "1k", 100000 → "100k").
fn size_label(n: u64) -> String {
    if n >= 1_000_000 && n % 1_000_000 == 0 {
        format!("{}m", n / 1_000_000)
    } else if n >= 1_000 && n % 1_000 == 0 {
        format!("{}k", n / 1_000)
    } else {
        n.to_string()
    }
}

impl StreamsSweep {
    /// Stable-order JSON rendering.
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "{{\"streams\":{},\"admitted\":{},\"decisions_per_sec\":{:.1},",
                        "\"live_bytes_per_stream\":{},\"rss_delta_bytes\":{},",
                        "\"rss_bytes_per_stream\":{},\"shed\":{},",
                        "\"compact\":{},\"resident\":{},\"hibernated\":{}}}"
                    ),
                    p.streams,
                    p.admitted,
                    p.decisions_per_sec,
                    p.live_bytes_per_stream,
                    p.rss_delta_bytes,
                    p.rss_bytes_per_stream,
                    p.shed,
                    p.compact,
                    p.resident,
                    p.hibernated
                )
            })
            .collect();
        format!("{{\"points\":[{}]}}", points.join(","))
    }

    /// Criterion-shim-style rows for `bench_snapshot.sh`. Rate rows carry
    /// the `per_sec` suffix (compare gate: higher is better); bytes rows
    /// are plain values (lower is better). Unavailable measurements
    /// (reading 0) are omitted rather than folded as zeros.
    pub fn bench_rows(&self) -> Vec<String> {
        let mut rows = Vec::new();
        for p in &self.points {
            let label = size_label(p.streams);
            rows.push(format!(
                "{{\"bench\":\"serve_streams/{label}_per_sec\",\"median_ns\":{:.1}}}",
                p.decisions_per_sec
            ));
            if p.live_bytes_per_stream > 0 {
                rows.push(format!(
                    "{{\"bench\":\"serve_streams/{label}_live_bytes_per_stream\",\"median_ns\":{}}}",
                    p.live_bytes_per_stream
                ));
            }
            if p.rss_bytes_per_stream > 0 {
                rows.push(format!(
                    "{{\"bench\":\"serve_streams/{label}_rss_bytes_per_stream\",\"median_ns\":{}}}",
                    p.rss_bytes_per_stream
                ));
            }
        }
        rows
    }
}

/// Drives one closed-loop round: one decision per stream, at most `window`
/// outstanding (backpressure instead of queue sheds). Returns the round's
/// wall time and how many answers came back shed-labelled.
fn closed_loop_round(
    client: &mut ServeClient,
    profile: &BaselineProfile,
    seed: u64,
    streams: u64,
    round: u64,
    window: u64,
) -> Result<(Duration, u64), String> {
    let base = 1u64 << 61;
    let start = Instant::now();
    let mut sent = 0u64;
    let mut received = 0u64;
    let mut shed = 0u64;
    while received < streams {
        while sent < streams && sent - received < window {
            client
                .send(&Request::Decide {
                    req_id: base | (round << 40) | sent,
                    stream: sent,
                    deadline_us: 0,
                    obs: synth_obs(profile, seed, sent, round),
                })
                .map_err(|e| format!("sweep send failed: {e}"))?;
            sent += 1;
        }
        match client.recv() {
            Ok(Response::Decision { source, .. }) => {
                received += 1;
                if source == Source::Shed as u8 {
                    shed += 1;
                }
            }
            Ok(other) => return Err(format!("unexpected sweep response {other:?}")),
            Err(e) => return Err(format!("sweep receive failed: {e}")),
        }
    }
    Ok((start.elapsed(), shed))
}

/// Runs the streams sweep: for each size, self-host a daemon sized for it
/// (hibernation off, so the measurement reflects the live compact tier),
/// admit every stream with a closed-loop warm round, read the memory
/// deltas, time a second closed-loop round for decisions/sec, and shut
/// down. Memory numbers are process-wide deltas, so the sweep must run
/// with no other daemon in-process.
pub fn run_streams_sweep(
    pipeline_cfg: &lahd_core::PipelineConfig,
    artifacts: &Path,
    base: &crate::ServeConfig,
    sizes: &[u64],
    seed: u64,
) -> Result<StreamsSweep, String> {
    let profile = load_profile(artifacts)?;
    let mut points = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let n = n.max(1);
        let mut cfg = base.clone();
        // Sized so hash imbalance across shards cannot shed, and with the
        // cold tier disabled: every admitted stream stays live in its
        // table, which is the bytes/stream story the sweep reports.
        cfg.max_streams = n as usize;
        cfg.hibernate_after = 0;
        cfg.allow_chaos = false;
        let socket =
            std::env::temp_dir().join(format!("lahd-sweep-{}-{n}.sock", std::process::id()));
        let handle = crate::daemon::serve_dir(pipeline_cfg, artifacts, cfg.clone(), &socket)?;
        let result = (|| -> Result<SweepPoint, String> {
            let mut control = ServeClient::connect_retry(&socket, Duration::from_secs(5))
                .map_err(|e| format!("sweep connect failed: {e}"))?;
            let mut load = ServeClient::connect_retry(&socket, Duration::from_secs(5))
                .map_err(|e| format!("sweep connect failed: {e}"))?;
            let _ = stats(&mut control)?; // settle: daemon + sidecar up
            let live0 = crate::live_bytes();
            let rss0 = crate::rss_bytes();
            let window = (cfg.queue_capacity as u64).clamp(16, 256);
            let (_, shed_warm) = closed_loop_round(&mut load, &profile, seed, n, 0, window)?;
            let (snap, _) = stats(&mut control)?; // sync barrier: exact gauges
            let live1 = crate::live_bytes();
            let rss1 = crate::rss_bytes();
            let (elapsed, shed_timed) = closed_loop_round(&mut load, &profile, seed, n, 1, window)?;
            let admitted = snap.streams_total().max(1);
            let live_delta = live1.saturating_sub(live0);
            let rss_delta = rss1.saturating_sub(rss0);
            Ok(SweepPoint {
                streams: n,
                admitted: snap.streams_total(),
                decisions_per_sec: n as f64 / elapsed.as_secs_f64().max(1e-9),
                live_bytes_per_stream: live_delta / admitted,
                rss_delta_bytes: rss_delta,
                rss_bytes_per_stream: rss_delta / admitted,
                shed: shed_warm + shed_timed,
                compact: snap.streams_compact,
                resident: snap.streams_resident,
                hibernated: snap.streams_hibernated,
            })
        })();
        // Always shut the daemon down, even on a failed measurement, so
        // the next size starts from a clean process-wide memory baseline.
        if let Ok(mut c) = ServeClient::connect_retry(&socket, Duration::from_secs(1)) {
            let _ = c.call(&Request::Shutdown);
        }
        handle.wait();
        points.push(result?);
    }
    Ok(StreamsSweep { points })
}

/// Copies the artifact directory to `out` and flips one bit in the middle
/// of `agent.params` — the hot-reload candidate that must be rejected.
pub fn prepare_corrupt_candidate(artifacts: &Path, out: &Path) -> std::io::Result<()> {
    let _ = std::fs::remove_dir_all(out);
    std::fs::create_dir_all(out)?;
    for entry in std::fs::read_dir(artifacts)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            std::fs::copy(entry.path(), out.join(entry.file_name()))?;
        }
    }
    let target = out.join("agent.params");
    let mut bytes = std::fs::read(&target)?;
    let at = bytes.len() / 2;
    bytes[at] ^= 0x10;
    std::fs::write(&target, bytes)
}

/// Deterministic healthy-looking observation for `(stream, round)`:
/// uniform inside each dimension's interquartile band.
fn synth_obs(profile: &BaselineProfile, seed: u64, stream: u64, round: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(
        seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ round.wrapping_mul(0xD1B5_4A32_D192_ED03),
    );
    profile
        .dims
        .iter()
        .map(|d| {
            let (lo, hi) = (d.p25 as f32, d.p75 as f32);
            if hi > lo {
                rng.gen_range(lo..hi)
            } else {
                lo
            }
        })
        .collect()
}

fn fnv_fold(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn stats(client: &mut ServeClient) -> Result<(MetricsSnapshot, usize), String> {
    match client.call(&Request::Stats) {
        Ok(Response::StatsJson(json)) => {
            let shards = {
                let needle = "\"shards\":";
                json.find(needle)
                    .map(|at| {
                        json[at + needle.len()..]
                            .chars()
                            .take_while(|c| c.is_ascii_digit())
                            .collect::<String>()
                            .parse()
                            .unwrap_or(1)
                    })
                    .unwrap_or(1)
            };
            Ok((MetricsSnapshot::from_json(&json), shards))
        }
        Ok(other) => Err(format!("unexpected stats response {other:?}")),
        Err(e) => Err(format!("stats request failed: {e}")),
    }
}

/// Loads the baseline profile the bench synthesises observations from.
pub fn load_profile(artifacts: &Path) -> Result<BaselineProfile, String> {
    let file = std::fs::File::open(artifacts.join("baseline.profile"))
        .map_err(|e| format!("baseline.profile unreadable: {e}"))?;
    let mut reader = std::io::BufReader::new(file);
    lahd_guard::read_profile(&mut reader).map_err(|e| format!("baseline.profile corrupt: {e}"))
}

/// Drives the daemon at `socket` per `cfg`, synthesising observations from
/// `artifacts/baseline.profile`.
pub fn run_bench(
    socket: &Path,
    artifacts: &Path,
    cfg: &BenchConfig,
) -> Result<BenchSummary, String> {
    let profile = load_profile(artifacts)?;
    let mut client = ServeClient::connect_retry(socket, Duration::from_secs(5))
        .map_err(|e| format!("connect failed: {e}"))?;
    let chaos = if cfg.rounds > 0 {
        Some(chaos_phase(&mut client, &profile, cfg)?)
    } else {
        None
    };
    let perf = if cfg.requests > 0 {
        Some(perf_phase(socket, &profile, cfg)?)
    } else {
        None
    };
    Ok(BenchSummary { chaos, perf })
}

fn expect_decisions(
    client: &mut ServeClient,
    expected: usize,
) -> Result<HashMap<u64, (u16, u8, u8)>, String> {
    let mut got = HashMap::with_capacity(expected);
    while got.len() < expected {
        match client.recv() {
            Ok(Response::Decision {
                req_id,
                action,
                tier,
                source,
            }) => {
                got.insert(req_id, (action, tier, source));
            }
            Ok(other) => return Err(format!("unexpected mid-round response {other:?}")),
            Err(e) => return Err(format!("decision receive failed: {e}")),
        }
    }
    Ok(got)
}

fn chaos_phase(
    client: &mut ServeClient,
    profile: &BaselineProfile,
    cfg: &BenchConfig,
) -> Result<ChaosOutcome, String> {
    let (before, shards) = stats(client)?;
    let first_chaos = cfg
        .chaos
        .as_ref()
        .map_or(cfg.rounds, ChaosPlan::first_round);
    let req_id = |round: u64, rep: u64, stream: u64| (round << 40) | (rep << 24) | stream;

    let mut requests = 0u64;
    let mut responses = 0u64;
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    let mut reload_rejected = cfg.chaos.is_none();
    let mut shed_observed = false;
    let mut deadline_fallback = cfg.chaos.is_none();
    let mut post_kill_guarded = cfg.chaos.is_none();

    for round in 0..cfg.rounds {
        let mut expected = 0usize;
        let mut deadline_req = None;
        if let Some(plan) = &cfg.chaos {
            if round == plan.kill_round {
                match client
                    .call(&Request::Crash {
                        shard: plan.kill_shard,
                    })
                    .map_err(|e| e.to_string())?
                {
                    Response::Ok => {}
                    other => return Err(format!("crash injection refused: {other:?}")),
                }
            }
            if round == plan.reload_round {
                match client
                    .call(&Request::Reload {
                        dir: plan.corrupt_dir.to_string_lossy().into_owned(),
                    })
                    .map_err(|e| e.to_string())?
                {
                    Response::Err(_) => reload_rejected = true,
                    other => return Err(format!("corrupt reload was not rejected: {other:?}")),
                }
            }
            if round == plan.burst_round {
                match client
                    .call(&Request::Hold {
                        shard: plan.kill_shard,
                        ms: plan.hold_ms,
                    })
                    .map_err(|e| e.to_string())?
                {
                    Response::Ok => {}
                    other => return Err(format!("hold injection refused: {other:?}")),
                }
                // One deliberately-delayed request against the held shard:
                // its 1 ms budget expires during the hold, so it must come
                // back from the deadline fallback.
                let victim = (0..cfg.streams)
                    .find(|&s| crate::daemon::shard_of(s, shards) == plan.kill_shard as usize)
                    .unwrap_or(0);
                let id = req_id(round, plan.burst_factor, victim);
                client
                    .send(&Request::Decide {
                        req_id: id,
                        stream: victim,
                        deadline_us: 1000,
                        obs: synth_obs(profile, cfg.seed, victim, round),
                    })
                    .map_err(|e| e.to_string())?;
                deadline_req = Some(id);
                expected += 1;
                requests += 1;
                for rep in 0..plan.burst_factor {
                    for stream in 0..cfg.streams {
                        client
                            .send(&Request::Decide {
                                req_id: req_id(round, rep, stream),
                                stream,
                                deadline_us: 0,
                                obs: synth_obs(profile, cfg.seed, stream, round),
                            })
                            .map_err(|e| e.to_string())?;
                        expected += 1;
                        requests += 1;
                    }
                }
            }
        }
        if expected == 0 {
            for stream in 0..cfg.streams {
                client
                    .send(&Request::Decide {
                        req_id: req_id(round, 0, stream),
                        stream,
                        deadline_us: 0,
                        obs: synth_obs(profile, cfg.seed, stream, round),
                    })
                    .map_err(|e| e.to_string())?;
                expected += 1;
                requests += 1;
            }
        }
        let got = expect_decisions(client, expected)?;
        responses += got.len() as u64;
        if round < first_chaos {
            for stream in 0..cfg.streams {
                if let Some(&(action, _, _)) = got.get(&req_id(round, 0, stream)) {
                    checksum = fnv_fold(checksum, round);
                    checksum = fnv_fold(checksum, stream);
                    checksum = fnv_fold(checksum, action as u64);
                }
            }
        }
        if let Some(plan) = &cfg.chaos {
            if got
                .values()
                .any(|&(_, _, source)| source == Source::Shed as u8)
            {
                shed_observed = true;
            }
            if let Some(id) = deadline_req {
                if matches!(got.get(&id), Some(&(_, _, s)) if s == Source::Deadline as u8) {
                    deadline_fallback = true;
                }
            }
            if round > plan.kill_round {
                let killed = plan.kill_shard as usize;
                for stream in 0..cfg.streams {
                    if crate::daemon::shard_of(stream, shards) == killed {
                        if let Some(&(_, _, source)) = got.get(&req_id(round, 0, stream)) {
                            if source == Source::Guarded as u8 {
                                post_kill_guarded = true;
                            }
                        }
                    }
                }
            }
        }
    }

    let (after, _) = stats(client)?;
    let shard_recovered =
        post_kill_guarded && (cfg.chaos.is_none() || after.restarts > before.restarts);
    Ok(ChaosOutcome {
        seed: cfg.seed,
        streams: cfg.streams,
        rounds: cfg.rounds,
        plan: cfg
            .chaos
            .as_ref()
            .map_or("none".to_string(), ChaosPlan::describe),
        requests,
        responses,
        prechaos_checksum: checksum,
        daemon_alive: true,
        shard_recovered,
        reload_rejected,
        generation_unchanged: after.generation == before.generation,
        shed_observed: shed_observed || cfg.chaos.is_none(),
        deadline_fallback,
    })
}

fn perf_phase(
    socket: &Path,
    profile: &BaselineProfile,
    cfg: &BenchConfig,
) -> Result<PerfOutcome, String> {
    use crate::protocol::{read_frame, write_frame};

    let stream = std::os::unix::net::UnixStream::connect(socket)
        .map_err(|e| format!("perf connect failed: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("stream clone failed: {e}"))?;
    let total = cfg.requests;
    let streams = cfg.streams.max(1);
    // Perf req-ids live above every chaos-phase id.
    let base = 1u64 << 62;
    let sent = std::sync::Mutex::new(HashMap::<u64, Instant>::with_capacity(total as usize));

    let outcome = std::thread::scope(|scope| -> Result<PerfOutcome, String> {
        let sent_ref = &sent;
        let collector = scope.spawn(
            move || -> Result<(LatencyHistogram, u64, u64, [u64; 4], Instant), String> {
                let mut reader = std::io::BufReader::new(stream);
                let mut hist = LatencyHistogram::default();
                let (mut shed, mut deadline) = (0u64, 0u64);
                let mut tiers = [0u64; 4];
                let mut got = 0u64;
                while got < total {
                    let frame = read_frame(&mut reader)
                        .map_err(|e| format!("perf receive failed: {e}"))?
                        .ok_or("daemon closed connection mid-bench")?;
                    match Response::decode(&frame) {
                        Ok(Response::Decision {
                            req_id,
                            tier,
                            source,
                            ..
                        }) => {
                            got += 1;
                            if let Some(at) = sent_ref.lock().unwrap().remove(&req_id) {
                                hist.record(at.elapsed().as_nanos() as u64);
                            }
                            if let Some(slot) = tiers.get_mut(tier as usize) {
                                *slot += 1;
                            }
                            if source == Source::Shed as u8 {
                                shed += 1;
                            } else if source == Source::Deadline as u8 {
                                deadline += 1;
                            }
                        }
                        Ok(other) => return Err(format!("unexpected perf response {other:?}")),
                        Err(e) => return Err(format!("perf decode failed: {e}")),
                    }
                }
                Ok((hist, shed, deadline, tiers, Instant::now()))
            },
        );

        let start = Instant::now();
        for i in 0..total {
            if cfg.rate > 0.0 {
                let due = start + Duration::from_secs_f64(i as f64 / cfg.rate);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
            let stream_id = i % streams;
            let round = (i / streams).wrapping_add(0x5EE0_0000_0000);
            let req_id = base | i;
            sent_ref.lock().unwrap().insert(req_id, Instant::now());
            let req = Request::Decide {
                req_id,
                stream: stream_id,
                deadline_us: cfg.deadline_us,
                obs: synth_obs(profile, cfg.seed, stream_id, round),
            };
            write_frame(&mut writer, &req.encode())
                .map_err(|e| format!("perf send failed: {e}"))?;
        }
        let (hist, shed, deadline, tiers, done_at) = collector
            .join()
            .map_err(|_| "perf collector panicked".to_string())??;
        let elapsed = (done_at - start).as_secs_f64().max(1e-9);
        Ok(PerfOutcome {
            requests: total,
            decisions_per_sec: total as f64 / elapsed,
            p50_ns: hist.quantile(0.5),
            p99_ns: hist.quantile(0.99),
            p999_ns: hist.quantile(0.999),
            shed,
            deadline_misses: deadline,
            tier_decisions: tiers,
        })
    })?;
    Ok(outcome)
}

/// Parameters of the supervisor-style crash-restart drill.
#[derive(Clone, Debug)]
pub struct DrillConfig {
    /// Concurrent streams admitted during the warm phase.
    pub streams: u64,
    /// Lockstep rounds driven before the SIGKILL.
    pub rounds_before: u64,
    /// Lockstep rounds driven after recovery — the checksummed window
    /// compared against the uninterrupted reference daemon.
    pub rounds_after: u64,
    /// Seed for observation synthesis (shared by both daemons).
    pub seed: u64,
    /// Arguments appended verbatim to every `<exe> serve` spawn (scale,
    /// artifact dir, shard count, audit cadence, …). The drill adds its
    /// own `--socket`, `--state-dir`, `--checkpoint-every` and
    /// `--recover`.
    pub serve_args: Vec<String>,
}

impl Default for DrillConfig {
    fn default() -> Self {
        Self {
            streams: 32,
            rounds_before: 6,
            rounds_after: 6,
            seed: 7,
            serve_args: Vec::new(),
        }
    }
}

/// What one crash-restart drill produced. Every field is a pure function
/// of the drill parameters and the injected faults, so
/// [`DrillOutcome::to_json`] is byte-reproducible across same-seed runs.
#[derive(Clone, Debug, PartialEq)]
pub struct DrillOutcome {
    /// Echo of the drill seed.
    pub seed: u64,
    /// Echo of the stream count.
    pub streams: u64,
    /// Echo of the pre-kill round count.
    pub rounds_before: u64,
    /// Echo of the post-recovery round count.
    pub rounds_after: u64,
    /// Description of the disk faults injected between kill and restart
    /// ("none" for the clean drill).
    pub faults: String,
    /// Streams admitted before the kill.
    pub admitted: u64,
    /// Streams the restarted daemon resumed from durable state.
    pub recovered: u64,
    /// Records recovery had to quarantine (checksum failures + torn-tail
    /// losses) — zero on the clean drill, positive under injected faults.
    pub quarantined: u64,
    /// Journal operations replayed over the checkpoint at recovery.
    pub journal_ops: u64,
    /// `recovered * 100 / admitted`, integer percent.
    pub resumed_pct: u64,
    /// FNV-1a over every post-window `(round, stream, action)` of the
    /// uninterrupted reference daemon.
    pub baseline_checksum: u64,
    /// The same fold over the killed-and-recovered daemon's answers.
    pub recovered_checksum: u64,
    /// The two checksums agree — recovery was action-identical.
    pub lockstep: bool,
    /// Both daemons (reference, and the recovered one after its drill
    /// window) drained and exited with status 0.
    pub clean_exit: bool,
}

impl DrillOutcome {
    /// Stable-order JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"seed\":{},\"streams\":{},\"rounds_before\":{},\"rounds_after\":{},",
                "\"faults\":\"{}\",\"admitted\":{},\"recovered\":{},\"quarantined\":{},",
                "\"journal_ops\":{},\"resumed_pct\":{},",
                "\"baseline_checksum\":\"{:#018x}\",\"recovered_checksum\":\"{:#018x}\",",
                "\"lockstep\":{},\"clean_exit\":{}}}"
            ),
            self.seed,
            self.streams,
            self.rounds_before,
            self.rounds_after,
            self.faults,
            self.admitted,
            self.recovered,
            self.quarantined,
            self.journal_ops,
            self.resumed_pct,
            self.baseline_checksum,
            self.recovered_checksum,
            self.lockstep,
            self.clean_exit
        )
    }

    /// The clean-drill gate: ≥99% of streams resumed, bit-identical
    /// post-recovery actions, graceful exits throughout.
    pub fn all_good(&self) -> bool {
        self.resumed_pct >= 99 && self.lockstep && self.clean_exit
    }
}

/// A spawned `serve` child that is SIGKILLed on drop, so a failed drill
/// never leaks daemons.
struct DrillDaemon {
    child: std::process::Child,
}

impl DrillDaemon {
    fn spawn(
        exe: &Path,
        serve_args: &[String],
        socket: &Path,
        state_dir: &Path,
        recover: bool,
    ) -> Result<Self, String> {
        let mut cmd = std::process::Command::new(exe);
        cmd.arg("serve")
            .args(serve_args)
            .arg("--socket")
            .arg(socket)
            .arg("--state-dir")
            .arg(state_dir)
            .arg("--checkpoint-every")
            .arg("1")
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        if recover {
            cmd.arg("--recover");
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("failed to spawn {}: {e}", exe.display()))?;
        Ok(Self { child })
    }

    /// SIGKILL — no drain, no flush; the crash the drill is about.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Reaps a daemon that was asked to shut down; true on exit status 0.
    fn wait_clean(mut self) -> Result<bool, String> {
        self.child
            .wait()
            .map(|status| status.success())
            .map_err(|e| format!("wait failed: {e}"))
    }
}

impl Drop for DrillDaemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Drives `rounds` lockstep rounds (one decision per stream), optionally
/// folding every `(round, stream, action)` into a checksum in
/// deterministic order.
fn drill_rounds(
    client: &mut ServeClient,
    profile: &BaselineProfile,
    seed: u64,
    streams: u64,
    rounds: std::ops::Range<u64>,
    mut checksum: Option<&mut u64>,
) -> Result<(), String> {
    let req_id = |round: u64, stream: u64| (round << 24) | stream;
    for round in rounds {
        for stream in 0..streams {
            client
                .send(&Request::Decide {
                    req_id: req_id(round, stream),
                    stream,
                    deadline_us: 0,
                    obs: synth_obs(profile, seed, stream, round),
                })
                .map_err(|e| format!("drill send failed: {e}"))?;
        }
        let got = expect_decisions(client, streams as usize)?;
        if let Some(sum) = checksum.as_deref_mut() {
            for stream in 0..streams {
                let Some(&(action, _, _)) = got.get(&req_id(round, stream)) else {
                    return Err(format!("drill round {round} lost stream {stream}"));
                };
                *sum = fnv_fold(*sum, round);
                *sum = fnv_fold(*sum, stream);
                *sum = fnv_fold(*sum, action as u64);
            }
        }
    }
    Ok(())
}

/// Blocks until every shard has written a checkpoint strictly newer than
/// its tick at entry. Called after the last reply of the warm phase, any
/// such checkpoint postdates that reply's batch, so it holds every
/// stream's final cursor — the precondition for a lossless SIGKILL.
fn await_quiescent_checkpoint(state_dir: &Path, shards: usize) -> Result<(), String> {
    let t0: HashMap<usize, u64> = persist::inspect(state_dir)
        .into_iter()
        .map(|c| (c.shard, c.tick))
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let infos = persist::inspect(state_dir);
        if infos.len() >= shards
            && infos
                .iter()
                .all(|c| c.tick > t0.get(&c.shard).copied().unwrap_or(0))
        {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err("timed out waiting for a quiescent checkpoint".to_string());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The supervisor-style crash-restart drill behind `lahd serve-drill`.
///
/// Two daemon lineages run the same seeded lockstep load:
///
/// 1. A **reference** daemon serves every round uninterrupted; its
///    post-window actions are checksummed.
/// 2. A **victim** daemon serves the warm rounds, is held until a
///    quiescent checkpoint lands, then is SIGKILLed mid-flight. An
///    optional `corrupt` hook damages the state directory (the CLI wires
///    seeded [`lahd-sim` disk faults](DrillOutcome::faults) through it).
///    A third spawn restarts on the damaged directory with `--recover`
///    and serves the same post-window rounds.
///
/// Daemons are spawned as real child processes of `exe` (the `lahd`
/// binary), so the kill is a genuine `SIGKILL` against a separate address
/// space — no in-process shortcuts. The returned [`DrillOutcome`] is
/// byte-reproducible for fixed parameters and faults.
pub fn run_restart_drill(
    exe: &Path,
    artifacts: &Path,
    work_dir: &Path,
    cfg: &DrillConfig,
    corrupt: Option<&dyn Fn(&Path) -> Result<String, String>>,
) -> Result<DrillOutcome, String> {
    let profile = load_profile(artifacts)?;
    let total = cfg.rounds_before + cfg.rounds_after;
    let pid = std::process::id();
    // Stale state from an earlier drill would poison both recovery and
    // the quiesce poll (old checkpoints carry ticks a fresh daemon never
    // reaches), so each lineage starts from an empty directory.
    let mkdir = |p: &Path| {
        let _ = std::fs::remove_dir_all(p);
        std::fs::create_dir_all(p).map_err(|e| format!("create {} failed: {e}", p.display()))
    };
    let connect = |socket: &Path| {
        ServeClient::connect_retry(socket, Duration::from_secs(10))
            .map_err(|e| format!("drill connect failed: {e}"))
    };
    let fnv_basis = 0xcbf2_9ce4_8422_2325u64;

    // Reference lineage: never interrupted.
    let base_state = work_dir.join("baseline-state");
    let base_sock = work_dir.join(format!("drill-base-{pid}.sock"));
    mkdir(&base_state)?;
    let base = DrillDaemon::spawn(exe, &cfg.serve_args, &base_sock, &base_state, false)?;
    let mut baseline_checksum = fnv_basis;
    {
        let mut client = connect(&base_sock)?;
        drill_rounds(
            &mut client,
            &profile,
            cfg.seed,
            cfg.streams,
            0..cfg.rounds_before,
            None,
        )?;
        drill_rounds(
            &mut client,
            &profile,
            cfg.seed,
            cfg.streams,
            cfg.rounds_before..total,
            Some(&mut baseline_checksum),
        )?;
        client
            .call(&Request::Shutdown)
            .map_err(|e| format!("reference shutdown failed: {e}"))?;
    }
    let base_clean = base.wait_clean()?;

    // Victim lineage: warm, quiesce, SIGKILL.
    let crash_state = work_dir.join("crash-state");
    let crash_sock = work_dir.join(format!("drill-crash-{pid}.sock"));
    mkdir(&crash_state)?;
    let mut victim = DrillDaemon::spawn(exe, &cfg.serve_args, &crash_sock, &crash_state, false)?;
    let shards = {
        let mut client = connect(&crash_sock)?;
        let (_, shards) = stats(&mut client)?;
        drill_rounds(
            &mut client,
            &profile,
            cfg.seed,
            cfg.streams,
            0..cfg.rounds_before,
            None,
        )?;
        shards
    };
    await_quiescent_checkpoint(&crash_state, shards)?;
    victim.kill();

    let faults = match corrupt {
        Some(inject) => inject(&crash_state)?,
        None => "none".to_string(),
    };

    // Recovery lineage: restart on the (possibly damaged) state directory.
    let revived = DrillDaemon::spawn(exe, &cfg.serve_args, &crash_sock, &crash_state, true)?;
    let mut recovered_checksum = fnv_basis;
    let snap = {
        let mut client = connect(&crash_sock)?;
        drill_rounds(
            &mut client,
            &profile,
            cfg.seed,
            cfg.streams,
            cfg.rounds_before..total,
            Some(&mut recovered_checksum),
        )?;
        let (snap, _) = stats(&mut client)?;
        client
            .call(&Request::Shutdown)
            .map_err(|e| format!("recovered shutdown failed: {e}"))?;
        snap
    };
    let revived_clean = revived.wait_clean()?;

    let admitted = cfg.streams;
    Ok(DrillOutcome {
        seed: cfg.seed,
        streams: cfg.streams,
        rounds_before: cfg.rounds_before,
        rounds_after: cfg.rounds_after,
        faults,
        admitted,
        recovered: snap.recovered_streams,
        quarantined: snap.quarantined_records,
        journal_ops: snap.journal_ops,
        resumed_pct: snap.recovered_streams * 100 / admitted.max(1),
        baseline_checksum,
        recovered_checksum,
        lockstep: recovered_checksum == baseline_checksum,
        clean_exit: base_clean && revived_clean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_obs_is_deterministic_and_in_band() {
        let mut sp = lahd_guard::StreamingProfile::new(3);
        for i in 0..100 {
            sp.push(&[i as f32 * 0.01, 1.0, -(i as f32) * 0.02]);
        }
        let profile = sp.profile();
        let a = synth_obs(&profile, 11, 2, 5);
        let b = synth_obs(&profile, 11, 2, 5);
        assert_eq!(a, b);
        let c = synth_obs(&profile, 11, 2, 6);
        assert_ne!(a, c);
        for (d, v) in profile.dims.iter().zip(&a) {
            assert!(
                (*v as f64) >= d.p25 - 1e-6 && (*v as f64) <= d.p75 + 1e-6,
                "obs outside interquartile band"
            );
        }
    }

    #[test]
    fn chaos_outcome_json_is_stable() {
        let outcome = ChaosOutcome {
            seed: 7,
            streams: 8,
            rounds: 40,
            plan: "none".to_string(),
            requests: 320,
            responses: 320,
            prechaos_checksum: 0xdead_beef,
            daemon_alive: true,
            shard_recovered: true,
            reload_rejected: true,
            generation_unchanged: true,
            shed_observed: true,
            deadline_fallback: true,
        };
        assert_eq!(outcome.to_json(), outcome.clone().to_json());
        assert!(outcome.all_good());
        assert!(outcome
            .to_json()
            .contains("\"prechaos_checksum\":\"0x00000000deadbeef\""));
    }

    #[test]
    fn drill_outcome_json_is_stable_and_gates_correctly() {
        let outcome = DrillOutcome {
            seed: 7,
            streams: 32,
            rounds_before: 6,
            rounds_after: 6,
            faults: "none".to_string(),
            admitted: 32,
            recovered: 32,
            quarantined: 0,
            journal_ops: 0,
            resumed_pct: 100,
            baseline_checksum: 0xdead_beef,
            recovered_checksum: 0xdead_beef,
            lockstep: true,
            clean_exit: true,
        };
        assert_eq!(outcome.to_json(), outcome.clone().to_json());
        assert!(outcome.all_good());
        let json = outcome.to_json();
        assert!(json.contains("\"baseline_checksum\":\"0x00000000deadbeef\""));
        assert!(json.contains("\"resumed_pct\":100"));
        let torn = DrillOutcome {
            recovered: 20,
            resumed_pct: 62,
            quarantined: 12,
            lockstep: false,
            recovered_checksum: 0xbad,
            faults: "torn-write keep=100".to_string(),
            ..outcome
        };
        assert!(!torn.all_good(), "lossy recovery must fail the clean gate");
    }

    #[test]
    fn standard_plan_orders_its_events() {
        let plan = ChaosPlan::standard(40, PathBuf::from("/tmp/x"));
        assert!(plan.kill_round < plan.burst_round);
        assert!(plan.burst_round < plan.reload_round);
        assert!(plan.reload_round < 40);
        assert_eq!(plan.first_round(), plan.kill_round);
    }

    #[test]
    fn bench_rows_cover_throughput_and_latency() {
        let summary = BenchSummary {
            chaos: None,
            perf: Some(PerfOutcome {
                requests: 100,
                decisions_per_sec: 1234.5,
                p50_ns: 1024,
                p99_ns: 4096,
                p999_ns: 8192,
                shed: 0,
                deadline_misses: 0,
                tier_decisions: [90, 6, 3, 1],
            }),
        };
        let rows = summary.bench_rows();
        assert_eq!(rows.len(), 4);
        assert!(rows[0].contains("serve_throughput/decisions_per_sec"));
        assert!(rows[1].contains("serve_latency/p50_ns"));
        for row in &rows {
            assert!(row.starts_with("{\"bench\":\"") && row.ends_with('}'));
        }
        let json = summary.perf.as_ref().unwrap().to_json();
        assert!(
            json.contains("\"tier_decisions\":{\"fsm\":90,\"quant\":6,\"exact\":3,\"baseline\":1}"),
            "per-tier counts missing from the perf summary: {json}"
        );
    }
}
