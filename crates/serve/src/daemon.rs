//! The serving daemon: Unix-socket listener, connection routing, admission
//! control, and crash-safe hot reload.
//!
//! Topology: one acceptor thread, one reader + one writer thread per
//! connection, and `shards` worker threads (see [`crate::shard`]) behind
//! bounded queues. Streams are hashed to shards ([`shard_of`]), so one
//! stream's requests are always ordered through one worker.
//!
//! Admission control: enqueue uses `try_send` against the bounded shard
//! queue, retrying `admission_retries` times with a short backoff on
//! transient fullness; persistent fullness *sheds* the request — it is
//! answered inline from the scenario-baseline fallback policy (labelled
//! [`crate::Source::Shed`]) instead of being rejected, and counted.
//!
//! Hot reload: a [`Request::Reload`] validates the candidate bundle
//! off-path on the connection thread ([`ServeBundle::load`]: checked
//! artifact parsing plus an inference probe). Only a sound bundle is
//! published — the generation counter bumps and every shard swaps at its
//! next batch boundary. A corrupt candidate is rejected with the old
//! bundle untouched; there is nothing to roll back because nothing was
//! swapped. (There is no portable signal handling in std, so reload is
//! command-triggered over the socket rather than via SIGHUP.)

use std::io::BufReader;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lahd_core::PipelineConfig;
use lahd_fsm::VecPolicy;

use crate::bundle::ServeBundle;
use crate::metrics::{render_stats_json, ServeMetrics};
use crate::protocol::{read_frame, write_frame, Request, Response, Source};
use crate::shard::{run_shard, ShardMsg, TIER_BASELINE};
use crate::telemetry::{run_aggregator, telemetry_channel, TelemetryHub};

/// Daemon tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of shard worker threads.
    pub shards: usize,
    /// Bounded per-shard queue capacity (admission control trips beyond).
    pub queue_capacity: usize,
    /// Maximum requests drained into one batch. Clamped below the blocked-
    /// GEMM row cutoff so batching never changes per-row results.
    pub batch_max: usize,
    /// Maximum live streams per shard; excess streams are shed.
    pub max_streams: usize,
    /// try_send retries before a request is shed.
    pub admission_retries: u32,
    /// Sleep between admission retries, microseconds.
    pub retry_backoff_us: u64,
    /// Whether chaos requests ([`Request::Crash`], [`Request::Hold`]) are
    /// honoured. Off by default; the chaos harness turns it on.
    pub allow_chaos: bool,
    /// Initial worker restart backoff after a panic, milliseconds.
    pub restart_backoff_ms: u64,
    /// Restart backoff ceiling, milliseconds.
    pub restart_backoff_cap_ms: u64,
    /// Decisions between periodic full-guard audits of a compact stream
    /// (staggered per stream; 0 disables audits).
    pub audit_every: u64,
    /// Maximum concurrently materialized audits per shard; further due
    /// audits are deferred, not skipped.
    pub audit_budget: usize,
    /// Idle shard ticks (batches or 20 ms idle intervals) before a compact
    /// stream hibernates into the arena (0 disables hibernation).
    pub hibernate_after: u64,
    /// Shard ticks between clock-sweep invocations.
    pub sweep_every: u64,
    /// Hibernation-arena capacity per shard; clock/second-chance eviction
    /// beyond (an evicted stream re-admits fresh).
    pub max_hibernated: usize,
    /// Directory for durable per-shard state (checkpoints + journals);
    /// `None` disables persistence entirely.
    pub state_dir: Option<PathBuf>,
    /// Shard ticks between periodic checkpoints (0 = checkpoint only on
    /// graceful drain). Ignored without a `state_dir`.
    pub checkpoint_every: u64,
    /// Whether shards load their checkpoint + journal on first boot (a
    /// one-shot latch: panic restarts and bundle swaps never reload).
    pub recover: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            queue_capacity: 64,
            batch_max: 12,
            max_streams: 1024,
            admission_retries: 2,
            retry_backoff_us: 100,
            allow_chaos: false,
            restart_backoff_ms: 10,
            restart_backoff_cap_ms: 500,
            audit_every: 4096,
            audit_budget: 8,
            hibernate_after: 512,
            sweep_every: 32,
            max_hibernated: 1 << 20,
            state_dir: None,
            checkpoint_every: 0,
            recover: false,
        }
    }
}

impl ServeConfig {
    /// Clamps fields into their safe ranges (at least one shard, batch
    /// size below the blocked-GEMM cutoff, non-zero queue).
    pub fn sanitized(mut self) -> Self {
        self.shards = self.shards.clamp(1, 256);
        self.queue_capacity = self.queue_capacity.max(1);
        // lahd_tensor::gemm::BLOCK_MIN_ROWS is 16; staying strictly below
        // keeps every batch on the per-row GEMV path (bit-stable rows).
        self.batch_max = self.batch_max.clamp(1, 15);
        self.max_streams = self.max_streams.max(1);
        self.sweep_every = self.sweep_every.max(1);
        self.max_hibernated = self.max_hibernated.max(1);
        self.audit_budget = self.audit_budget.max(1);
        self
    }
}

/// State shared by every daemon thread.
pub struct SharedState {
    /// Daemon knobs.
    pub cfg: ServeConfig,
    /// Pipeline configuration reload candidates are validated under.
    pub pipeline_cfg: PipelineConfig,
    /// The currently published bundle.
    pub bundle: Mutex<Arc<ServeBundle>>,
    /// Bundle generation; bumps on every accepted reload.
    pub generation: AtomicU64,
    /// Daemon-wide off-path counters (decision-path counters travel
    /// through `telemetry`).
    pub metrics: ServeMetrics,
    /// The telemetry sidecar's shard-facing half: shards flush deltas
    /// through it, the stats endpoint syncs snapshots from it.
    pub telemetry: TelemetryHub,
    /// Set once; every loop drains and exits. (`Arc` so the aggregator
    /// thread can hold it past the daemon's lifetime edge cases.)
    pub shutdown: Arc<AtomicBool>,
    /// Per-shard one-shot recovery latches: `true` until the shard's first
    /// boot consumes it via [`SharedState::take_recover`].
    pub recover_shards: Vec<AtomicBool>,
}

impl SharedState {
    /// Consumes shard `i`'s recovery latch. Returns `true` exactly once
    /// per daemon lifetime — a panic restart or bundle swap rebuilds the
    /// shard fresh instead of resurrecting a checkpoint that is now stale
    /// against the live daemon's state.
    pub fn take_recover(&self, shard: usize) -> bool {
        self.recover_shards
            .get(shard)
            .is_some_and(|latch| latch.swap(false, Ordering::AcqRel))
    }
}

/// Hashes a stream id to its shard (FNV-1a over the id bytes).
pub fn shard_of(stream: u64, shards: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in stream.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// A running daemon; drop order is handled by [`ServeHandle::wait`].
pub struct ServeHandle {
    shared: Arc<SharedState>,
    socket: PathBuf,
    acceptor: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<()>>,
    aggregator: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The socket the daemon listens on.
    pub fn socket_path(&self) -> &Path {
        &self.socket
    }

    /// Shared state (metrics, generation) for in-process harnesses.
    pub fn shared(&self) -> &Arc<SharedState> {
        &self.shared
    }

    /// Requests shutdown without waiting (clients normally send
    /// [`Request::Shutdown`] instead).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Blocks until the acceptor, every shard worker, and the telemetry
    /// aggregator have exited, then removes the socket file.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for handle in self.shards.drain(..) {
            let _ = handle.join();
        }
        // Shards are gone, so no more deltas; let the aggregator see the
        // flag on its next idle interval.
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(aggregator) = self.aggregator.take() {
            let _ = aggregator.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

/// Starts the daemon over an already-validated bundle.
pub fn serve(
    bundle: ServeBundle,
    pipeline_cfg: PipelineConfig,
    cfg: ServeConfig,
    socket: &Path,
) -> std::io::Result<ServeHandle> {
    let cfg = cfg.sanitized();
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    listener.set_nonblocking(true)?;

    // Sidecar channel sized a few deltas per shard: shards defer (never
    // block, never drop) on transient fullness.
    let (telemetry, telemetry_rx) = telemetry_channel(cfg.shards * 4);
    let shutdown = Arc::new(AtomicBool::new(false));
    let recover = cfg.recover && cfg.state_dir.is_some();
    let shared = Arc::new(SharedState {
        recover_shards: (0..cfg.shards).map(|_| AtomicBool::new(recover)).collect(),
        cfg: cfg.clone(),
        pipeline_cfg,
        bundle: Mutex::new(Arc::new(bundle)),
        generation: AtomicU64::new(1),
        metrics: ServeMetrics::default(),
        telemetry: telemetry.clone(),
        shutdown: shutdown.clone(),
    });

    let aggregator = {
        let hub = telemetry.clone();
        let shards = cfg.shards;
        std::thread::Builder::new()
            .name("lahd-telemetry".to_string())
            .spawn(move || run_aggregator(telemetry_rx, hub, shards, shutdown))?
    };

    let mut senders = Vec::with_capacity(cfg.shards);
    let mut shards = Vec::with_capacity(cfg.shards);
    for i in 0..cfg.shards {
        let (tx, rx) = mpsc::sync_channel::<ShardMsg>(cfg.queue_capacity);
        senders.push(tx);
        let shared = shared.clone();
        shards.push(
            std::thread::Builder::new()
                .name(format!("lahd-shard-{i}"))
                .spawn(move || run_shard(i, rx, shared))?,
        );
    }

    let acceptor = {
        let shared = shared.clone();
        let senders = senders.clone();
        std::thread::Builder::new()
            .name("lahd-accept".to_string())
            .spawn(move || accept_loop(listener, shared, senders))?
    };

    Ok(ServeHandle {
        shared,
        socket: socket.to_path_buf(),
        acceptor: Some(acceptor),
        shards,
        aggregator: Some(aggregator),
    })
}

/// Loads + validates the bundle in `dir`, then starts the daemon.
pub fn serve_dir(
    pipeline_cfg: &PipelineConfig,
    dir: &Path,
    cfg: ServeConfig,
    socket: &Path,
) -> Result<ServeHandle, String> {
    let bundle = ServeBundle::load(pipeline_cfg, dir)?;
    serve(bundle, pipeline_cfg.clone(), cfg, socket).map_err(|e| format!("bind failed: {e}"))
}

fn accept_loop(
    listener: UnixListener,
    shared: Arc<SharedState>,
    senders: Vec<SyncSender<ShardMsg>>,
) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                let senders = senders.clone();
                let _ = std::thread::Builder::new()
                    .name("lahd-conn".to_string())
                    .spawn(move || handle_conn(stream, shared, senders));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(_) => break,
        }
    }
    // Stop the workers; queued requests drain first (FIFO).
    for tx in &senders {
        let _ = tx.send(ShardMsg::Shutdown);
    }
}

fn handle_conn(stream: UnixStream, shared: Arc<SharedState>, senders: Vec<SyncSender<ShardMsg>>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx_resp, rx_resp) = mpsc::channel::<Response>();
    let writer = std::thread::Builder::new()
        .name("lahd-conn-w".to_string())
        .spawn(move || {
            let mut w = write_half;
            for resp in rx_resp {
                if write_frame(&mut w, &resp.encode()).is_err() {
                    break;
                }
            }
        });
    let Ok(writer) = writer else { return };

    let mut reader = BufReader::new(stream);
    // Built lazily from the current bundle; depends only on the scenario,
    // so it survives reloads.
    let mut shed_policy: Option<Box<dyn VecPolicy>> = None;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => break,
        };
        let req = match Request::decode(&frame) {
            Ok(req) => req,
            Err(e) => {
                let _ = tx_resp.send(Response::Err(e.to_string()));
                continue;
            }
        };
        match req {
            Request::Decide {
                req_id,
                stream: stream_id,
                deadline_us,
                obs,
            } => route_decide(
                &shared,
                &senders,
                &tx_resp,
                &mut shed_policy,
                req_id,
                stream_id,
                deadline_us,
                obs,
            ),
            Request::Stats => {
                // The sync is a read barrier: every delta a shard flushed
                // before any reply this client has seen is merged first.
                let snap = shared.telemetry.sync();
                let gen = shared.generation.load(Ordering::Acquire);
                let _ = tx_resp.send(Response::StatsJson(render_stats_json(
                    gen,
                    shared.cfg.shards,
                    &shared.metrics,
                    &snap,
                )));
            }
            Request::Reload { dir } => {
                match ServeBundle::load(&shared.pipeline_cfg, Path::new(&dir)) {
                    Ok(bundle) => {
                        *shared.bundle.lock().unwrap() = Arc::new(bundle);
                        let gen = shared.generation.fetch_add(1, Ordering::AcqRel) + 1;
                        ServeMetrics::bump(&shared.metrics.reloads_ok);
                        let _ = tx_resp.send(Response::ReloadOk { generation: gen });
                    }
                    Err(e) => {
                        ServeMetrics::bump(&shared.metrics.reloads_rejected);
                        let _ = tx_resp.send(Response::Err(format!("reload rejected: {e}")));
                    }
                }
            }
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::Release);
                let _ = tx_resp.send(Response::Ok);
            }
            Request::Ping => {
                // Liveness probe: answered inline on the connection thread,
                // so it works even while every shard queue is saturated.
                let _ = tx_resp.send(Response::Ok);
            }
            Request::Crash { shard } => {
                let _ = tx_resp.send(chaos_send(&shared, &senders, shard, ShardMsg::Crash));
            }
            Request::Hold { shard, ms } => {
                let _ = tx_resp.send(chaos_send(
                    &shared,
                    &senders,
                    shard,
                    ShardMsg::Hold { ms: ms.min(10_000) },
                ));
            }
        }
    }
    drop(tx_resp);
    let _ = writer.join();
}

fn chaos_send(
    shared: &SharedState,
    senders: &[SyncSender<ShardMsg>],
    shard: u32,
    msg: ShardMsg,
) -> Response {
    if !shared.cfg.allow_chaos {
        return Response::Err("chaos requests are disabled".to_string());
    }
    let Some(tx) = senders.get(shard as usize) else {
        return Response::Err(format!("no such shard {shard}"));
    };
    match tx.try_send(msg) {
        Ok(()) => Response::Ok,
        Err(_) => Response::Err(format!("shard {shard} queue full")),
    }
}

#[allow(clippy::too_many_arguments)]
fn route_decide(
    shared: &SharedState,
    senders: &[SyncSender<ShardMsg>],
    tx_resp: &mpsc::Sender<Response>,
    shed_policy: &mut Option<Box<dyn VecPolicy>>,
    req_id: u64,
    stream_id: u64,
    deadline_us: u64,
    obs: Vec<f32>,
) {
    let shard = shard_of(stream_id, senders.len());
    let enqueued = Instant::now();
    let deadline = (deadline_us > 0).then(|| enqueued + Duration::from_micros(deadline_us));
    let mut msg = ShardMsg::Decide {
        req_id,
        stream: stream_id,
        deadline,
        enqueued,
        obs,
        reply: tx_resp.clone(),
    };
    for attempt in 0..=shared.cfg.admission_retries {
        match senders[shard].try_send(msg) {
            Ok(()) => return,
            Err(TrySendError::Full(back)) => {
                ServeMetrics::bump(&shared.metrics.queue_full);
                msg = back;
                if attempt < shared.cfg.admission_retries {
                    std::thread::sleep(Duration::from_micros(shared.cfg.retry_backoff_us));
                }
            }
            Err(TrySendError::Disconnected(back)) => {
                msg = back;
                break;
            }
        }
    }
    // Persistent backpressure: degrade gracefully by answering from the
    // cheap scenario-baseline fallback instead of erroring.
    let ShardMsg::Decide { req_id, obs, .. } = msg else {
        unreachable!("decide admission only routes decide messages");
    };
    let policy = shed_policy.get_or_insert_with(|| {
        let bundle = shared.bundle.lock().unwrap().clone();
        bundle
            .scenario()
            .baselines(&bundle.cfg.sim)
            .into_iter()
            .next()
            .expect("every scenario registers at least one baseline")
    });
    let action = policy.act_vec(&obs) as u16;
    ServeMetrics::bump(&shared.metrics.shed);
    let _ = tx_resp.send(Response::Decision {
        req_id,
        action,
        tier: TIER_BASELINE as u8,
        source: Source::Shed as u8,
    });
}
