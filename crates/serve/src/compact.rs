//! Compact per-stream serving state and the cold-stream hibernation arena.
//!
//! The tiered stream-state story (see [`crate::shard`]) keeps a healthy
//! FSM-tier stream as a [`CompactStream`]: the compiled cursor, a
//! [`MicroHealth`] triage summary, and three scheduling words — ~96 bytes
//! of plain data, no heap edges. Because it is pointer-free it also
//! *hibernates* exactly: [`CompactStream::serialize_into`] flattens it to
//! a fixed-width little-endian record in a slab arena, and
//! [`CompactStream::deserialize`] rebuilds a bit-identical copy, which is
//! what makes the hibernate/wake action-equivalence guarantee a
//! round-trip property instead of a best-effort one.
//!
//! The arena is deliberately dumb: fixed-size records in a `Vec<u8>` slab
//! with a free list, indexed by stream key. Once over capacity it evicts
//! with a clock/second-chance policy over *wake frequency*: each slot
//! carries a small counter seeded from the record's capped wake count,
//! and the clock hand decrements counters until it finds a zero — so a
//! stream that keeps getting woken (and re-parked) outlives one that went
//! cold and never came back. Evicting a record forgets the stream — it
//! re-admits fresh on return, exactly like a stream the daemon never saw
//! — so the arena is a bounded cache of continuations, not a durability
//! promise (that is [`crate::persist`]'s job).

use lahd_fsm::{CompiledCursor, FsmRunStats, SavedCursor};
use lahd_guard::MicroHealth;

use crate::stream_table::StreamTable;

/// Everything a healthy FSM-tier stream keeps while compact.
#[derive(Clone, Debug)]
pub struct CompactStream {
    /// The compiled-FSM execution state (state id + run statistics).
    pub cursor: CompiledCursor,
    /// Triage health counters (stuck input, unseen rate, band violations).
    pub health: MicroHealth,
    /// Decisions this stream has served (compact + resident combined).
    pub decisions: u64,
    /// Decision count at which the next full-guard audit is due.
    pub next_audit: u64,
    /// Shard tick of the last served decision (hibernation idleness).
    pub last_tick: u64,
    /// Times this stream has been woken from the arena (drives the clock
    /// eviction policy; persisted so recovered streams keep their heat).
    pub wakes: u32,
}

/// Serialized record width: 8 (key) + 2+6pad (state) + 4×8 (stats) +
/// 8 (unseen_total) + 8+4+2+2+2+6pad (health, with `wakes` packed into
/// the stuck-run word's high half) + 8 (decisions) + 8 (next_audit).
/// `last_tick` is deliberately not persisted — a woken stream's idle
/// clock restarts.
pub const REC_BYTES: usize = 96;

impl CompactStream {
    /// A fresh stream at the machine's start state.
    pub fn new(cursor: CompiledCursor, first_audit: u64) -> Self {
        Self {
            cursor,
            health: MicroHealth::new(),
            decisions: 0,
            next_audit: first_audit,
            last_tick: 0,
            wakes: 0,
        }
    }

    /// Flattens into exactly [`REC_BYTES`] at `out` (little-endian).
    pub fn serialize_into(&self, key: u64, out: &mut [u8]) {
        assert_eq!(out.len(), REC_BYTES);
        let saved = self.cursor.save();
        let (last_hash, stuck_run, unseen_recent, oob_recent, pos) = self.health.to_parts();
        let mut w = Writer { out, at: 0 };
        w.u64(key);
        w.u64(saved.state as u64);
        w.u64(saved.stats.steps as u64);
        w.u64(saved.stats.unseen_observations as u64);
        w.u64(saved.stats.missing_transitions as u64);
        w.u64(saved.stats.stuck_steps as u64);
        w.u64(saved.unseen_total);
        w.u64(last_hash);
        w.u64((stuck_run as u64) | ((self.wakes as u64) << 32));
        w.u64(((unseen_recent as u64) << 32) | ((oob_recent as u64) << 16) | pos as u64);
        w.u64(self.decisions);
        w.u64(self.next_audit);
        debug_assert_eq!(w.at, REC_BYTES);
    }

    /// Rebuilds from [`CompactStream::serialize_into`] output; returns the
    /// stream key alongside the state.
    pub fn deserialize(rec: &[u8]) -> (u64, Self) {
        assert_eq!(rec.len(), REC_BYTES);
        let mut r = Reader { rec, at: 0 };
        let key = r.u64();
        let state = r.u64() as u16;
        let stats = FsmRunStats {
            steps: r.u64() as usize,
            unseen_observations: r.u64() as usize,
            missing_transitions: r.u64() as usize,
            stuck_steps: r.u64() as usize,
        };
        let unseen_total = r.u64();
        let last_hash = r.u64();
        let stuck_word = r.u64();
        let stuck_run = stuck_word as u32;
        let wakes = (stuck_word >> 32) as u32;
        let packed = r.u64();
        let health = MicroHealth::from_parts((
            last_hash,
            stuck_run,
            (packed >> 32) as u16,
            (packed >> 16) as u16,
            packed as u16,
        ));
        let decisions = r.u64();
        let next_audit = r.u64();
        (
            key,
            Self {
                cursor: CompiledCursor::restore(SavedCursor {
                    state,
                    stats,
                    unseen_total,
                }),
                health,
                decisions,
                next_audit,
                last_tick: 0,
                wakes,
            },
        )
    }
}

struct Writer<'a> {
    out: &'a mut [u8],
    at: usize,
}

impl Writer<'_> {
    fn u64(&mut self, v: u64) {
        self.out[self.at..self.at + 8].copy_from_slice(&v.to_le_bytes());
        self.at += 8;
    }
}

struct Reader<'a> {
    rec: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.rec[self.at..self.at + 8].try_into().unwrap());
        self.at += 8;
        v
    }
}

/// Ceiling on a slot's second-chance counter: a very hot stream still
/// yields within a few clock laps, so eviction latency stays bounded.
const CLOCK_MAX: u8 = 3;

/// The serialized arena hibernated streams park in. Record slots are
/// tracked through the same generation-stamped [`StreamTable`] machinery
/// as live streams, but the payload here is a slab offset, not a boxed
/// ladder — a hibernated stream costs `REC_BYTES` + table overhead.
pub struct HibernationArena {
    data: Vec<u8>,
    /// stream key -> record slot (index into `data` / REC_BYTES).
    index: StreamTable<u32>,
    free: Vec<u32>,
    /// Per-slot second-chance counters, seeded from the parked record's
    /// capped wake count and decremented as the clock hand passes.
    meta: Vec<u8>,
    /// Clock hand over the slot span.
    hand: usize,
    capacity: usize,
    evicted: u64,
    /// Keys evicted since the last [`HibernationArena::drain_evicted`]
    /// call — the write-ahead journal's eviction feed.
    evicted_keys: Vec<u64>,
}

impl HibernationArena {
    /// An arena bounded at `capacity` hibernated streams.
    pub fn new(capacity: usize) -> Self {
        Self {
            data: Vec::new(),
            index: StreamTable::with_capacity(64),
            free: Vec::new(),
            meta: Vec::new(),
            hand: 0,
            capacity: capacity.max(1),
            evicted: 0,
            evicted_keys: Vec::new(),
        }
    }

    /// Hibernated stream count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the arena holds no streams.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Arena slab bytes currently allocated.
    pub fn arena_bytes(&self) -> u64 {
        self.data.capacity() as u64
    }

    /// Streams forgotten to keep the arena under capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Whether `key` is hibernating here.
    pub fn contains(&self, key: u64) -> bool {
        self.index.lookup(key).is_some()
    }

    /// Parks a compact stream. Overwrites a prior record for the same key
    /// (can happen when a stream hibernates, wakes, and hibernates again).
    pub fn hibernate(&mut self, key: u64, stream: &CompactStream) {
        if let Some(r) = self.index.lookup(key) {
            let slot = *self.index.get(r).expect("fresh handle");
            self.write_slot(slot, key, stream);
            return;
        }
        while self.index.len() >= self.capacity && self.evict_one() {}
        let slot = self.alloc_slot();
        self.write_slot(slot, key, stream);
        self.index.insert(key, slot);
    }

    /// Wakes `key`, removing and rebuilding its record. The wake count
    /// bumps — the heat the clock policy protects on the next hibernate.
    pub fn wake(&mut self, key: u64) -> Option<CompactStream> {
        let slot = self.index.remove(key)?;
        let at = slot as usize * REC_BYTES;
        let (rec_key, mut stream) = CompactStream::deserialize(&self.data[at..at + REC_BYTES]);
        debug_assert_eq!(rec_key, key, "arena slot/key mismatch");
        stream.wakes = stream.wakes.saturating_add(1);
        self.free.push(slot);
        Some(stream)
    }

    /// Appends every live record ([`REC_BYTES`] each, slot order) to
    /// `out` — the checkpoint writer's view of the arena.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        for slot in 0..(self.data.len() / REC_BYTES) as u32 {
            if self.slot_key(slot).is_some() {
                let at = slot as usize * REC_BYTES;
                out.extend_from_slice(&self.data[at..at + REC_BYTES]);
            }
        }
    }

    /// Re-parks a serialized record byte-identically (the recovery path —
    /// no deserialize/serialize round trip, though one would be exact).
    /// Returns the record's stream key.
    pub fn restore_record(&mut self, rec: &[u8]) -> u64 {
        assert_eq!(rec.len(), REC_BYTES);
        let key = u64::from_le_bytes(rec[0..8].try_into().unwrap());
        let wakes = u32::from_le_bytes(rec[68..72].try_into().unwrap());
        let slot = match self.index.lookup(key) {
            Some(r) => *self.index.get(r).expect("fresh handle"),
            None => {
                while self.index.len() >= self.capacity && self.evict_one() {}
                let slot = self.alloc_slot();
                self.index.insert(key, slot);
                slot
            }
        };
        let at = slot as usize * REC_BYTES;
        self.data[at..at + REC_BYTES].copy_from_slice(rec);
        self.meta[slot as usize] = wakes.min(CLOCK_MAX as u32) as u8;
        key
    }

    /// Drops `key`'s record without waking it (journal-eviction replay).
    pub fn forget(&mut self, key: u64) -> bool {
        match self.index.remove(key) {
            Some(slot) => {
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// Keys evicted under capacity pressure since the last drain.
    pub fn drain_evicted(&mut self) -> std::vec::Drain<'_, u64> {
        self.evicted_keys.drain(..)
    }

    /// Drops everything (bundle swap invalidates saved state ids).
    pub fn clear(&mut self) {
        self.data.clear();
        self.index.clear();
        self.free.clear();
        self.meta.clear();
        self.hand = 0;
        self.evicted_keys.clear();
    }

    /// A free slot, growing the slab (and its clock metadata) if needed.
    fn alloc_slot(&mut self) -> u32 {
        match self.free.pop() {
            Some(s) => s,
            None => {
                let s = (self.data.len() / REC_BYTES) as u32;
                self.data.resize(self.data.len() + REC_BYTES, 0);
                self.meta.push(0);
                s
            }
        }
    }

    /// Serializes `stream` into `slot` and seeds its second-chance counter
    /// from the stream's capped wake count.
    fn write_slot(&mut self, slot: u32, key: u64, stream: &CompactStream) {
        let at = slot as usize * REC_BYTES;
        stream.serialize_into(key, &mut self.data[at..at + REC_BYTES]);
        self.meta[slot as usize] = stream.wakes.min(CLOCK_MAX as u32) as u8;
    }

    /// The key occupying `slot`, if any: the slab record's leading key
    /// must map back to this slot through the index (a freed slot's stale
    /// bytes fail that round trip).
    fn slot_key(&self, slot: u32) -> Option<u64> {
        let at = slot as usize * REC_BYTES;
        let key = u64::from_le_bytes(self.data[at..at + 8].try_into().unwrap());
        let r = self.index.lookup(key)?;
        (*self.index.get(r)? == slot).then_some(key)
    }

    /// Clock sweep: advance the hand, decrementing non-zero counters,
    /// until a zero-counter victim is found and evicted. Bounded — each
    /// full lap decrements every live counter, so a victim appears within
    /// `CLOCK_MAX + 1` laps.
    fn evict_one(&mut self) -> bool {
        let slots = self.data.len() / REC_BYTES;
        if slots == 0 || self.index.is_empty() {
            return false;
        }
        for _ in 0..slots * (CLOCK_MAX as usize + 2) {
            let slot = self.hand % slots;
            self.hand = self.hand.wrapping_add(1);
            let Some(key) = self.slot_key(slot as u32) else {
                continue;
            };
            if self.meta[slot] > 0 {
                self.meta[slot] -= 1;
                continue;
            }
            self.index.remove(key);
            self.free.push(slot as u32);
            self.evicted += 1;
            self.evicted_keys.push(key);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahd_guard::{obs_hash, MicroConfig};

    fn sample(decisions: u64) -> CompactStream {
        let mut s = CompactStream {
            cursor: CompiledCursor::restore(SavedCursor {
                state: 7,
                stats: FsmRunStats {
                    steps: 40,
                    unseen_observations: 3,
                    missing_transitions: 2,
                    stuck_steps: 1,
                },
                unseen_total: 9,
            }),
            health: MicroHealth::new(),
            decisions,
            next_audit: decisions + 4096,
            last_tick: 55,
            wakes: 2,
        };
        let cfg = MicroConfig::default();
        for i in 0..13u64 {
            s.health
                .observe(&cfg, obs_hash(&[i as f32]), i % 3 == 0, i % 5 == 0);
        }
        s
    }

    #[test]
    fn serialize_roundtrips_bit_exactly() {
        let s = sample(123);
        let mut rec = [0u8; REC_BYTES];
        s.serialize_into(42, &mut rec);
        let (key, back) = CompactStream::deserialize(&rec);
        assert_eq!(key, 42);
        assert_eq!(back.cursor.save(), s.cursor.save());
        assert_eq!(back.health, s.health);
        assert_eq!(back.decisions, s.decisions);
        assert_eq!(back.next_audit, s.next_audit);
        assert_eq!(back.last_tick, 0, "idle clock restarts on wake");
        assert_eq!(back.wakes, s.wakes, "heat survives the round trip");
    }

    #[test]
    fn compact_stream_stays_under_the_size_budget() {
        // The tentpole's target: healthy FSM-tier streams ≤256 B. The
        // in-memory record must leave room for slab + index overhead
        // (~32 B measured in PERF.md).
        assert!(
            std::mem::size_of::<CompactStream>() <= 128,
            "CompactStream grew to {} B",
            std::mem::size_of::<CompactStream>()
        );
        assert_eq!(REC_BYTES % 8, 0);
    }

    #[test]
    fn arena_parks_wakes_and_reuses_slots() {
        let mut arena = HibernationArena::new(64);
        arena.hibernate(1, &sample(10));
        arena.hibernate(2, &sample(20));
        assert_eq!(arena.len(), 2);
        assert!(arena.contains(1));
        let woken = arena.wake(1).expect("parked");
        assert_eq!(woken.decisions, 10);
        assert!(!arena.contains(1));
        assert!(arena.wake(1).is_none());
        // The freed slot is reused, not grown.
        let bytes = arena.arena_bytes();
        arena.hibernate(3, &sample(30));
        assert_eq!(arena.arena_bytes(), bytes);
        assert_eq!(arena.wake(3).expect("parked").decisions, 30);
    }

    /// A never-woken stream (all clock counters zero).
    fn cold(decisions: u64) -> CompactStream {
        let mut s = sample(decisions);
        s.wakes = 0;
        s
    }

    #[test]
    fn over_capacity_evicts_cold_streams() {
        let mut arena = HibernationArena::new(2);
        arena.hibernate(1, &cold(1));
        arena.hibernate(2, &cold(2));
        arena.hibernate(3, &cold(3));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.evicted(), 1);
        assert!(
            !arena.contains(1),
            "all counters zero: the hand evicts the first slot it scans"
        );
        assert!(arena.contains(2) && arena.contains(3));
        assert_eq!(arena.drain_evicted().collect::<Vec<_>>(), vec![1]);
        // A woken stream frees its slot; re-parking needs no eviction.
        arena.wake(2).expect("parked");
        arena.hibernate(4, &cold(4));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.evicted(), 1, "no eviction needed after wake");
    }

    #[test]
    fn frequently_woken_streams_outlive_cold_ones_under_pressure() {
        let mut arena = HibernationArena::new(4);
        // Park four streams, then heat stream 1 with repeated wake/park
        // cycles (each wake bumps its count, reseeding its counter).
        for key in 1..=4u64 {
            arena.hibernate(key, &cold(key));
        }
        for _ in 0..3 {
            let hot = arena.wake(1).expect("parked");
            arena.hibernate(1, &hot);
        }
        // Now push three fresh cold streams through a full arena: every
        // eviction scan must sacrifice cold streams and spare the hot one.
        for key in 10..13u64 {
            arena.hibernate(key, &cold(key));
        }
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.evicted(), 3);
        assert!(
            arena.contains(1),
            "the frequently-woken stream survived the pressure"
        );
        let evicted: Vec<u64> = arena.drain_evicted().collect();
        assert!(!evicted.contains(&1), "evicted: {evicted:?}");
        let woken = arena.wake(1).expect("still parked");
        assert_eq!(woken.wakes, 4, "3 reheat cycles + this wake");
    }

    #[test]
    fn snapshot_and_restore_are_byte_identical() {
        let mut arena = HibernationArena::new(8);
        arena.hibernate(5, &sample(50));
        arena.hibernate(6, &cold(60));
        arena.wake(5).expect("parked");
        arena.hibernate(7, &sample(70));
        let mut snap = Vec::new();
        arena.snapshot_into(&mut snap);
        assert_eq!(snap.len(), 2 * REC_BYTES, "only live records captured");

        let mut back = HibernationArena::new(8);
        for rec in snap.chunks_exact(REC_BYTES) {
            back.restore_record(rec);
        }
        assert_eq!(back.len(), 2);
        let mut resnap = Vec::new();
        back.snapshot_into(&mut resnap);
        let mut a: Vec<&[u8]> = snap.chunks_exact(REC_BYTES).collect();
        let mut b: Vec<&[u8]> = resnap.chunks_exact(REC_BYTES).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "restored arena re-snapshots byte-identically");
        assert_eq!(back.wake(6).expect("restored").decisions, 60);
        assert!(back.forget(7), "journal replay can drop a record");
        assert!(!back.forget(7));
        assert!(back.is_empty());
    }

    #[test]
    fn rehibernating_a_key_overwrites_in_place() {
        let mut arena = HibernationArena::new(8);
        arena.hibernate(9, &sample(1));
        arena.hibernate(9, &sample(99));
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.wake(9).expect("parked").decisions, 99);
    }
}
