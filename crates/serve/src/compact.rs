//! Compact per-stream serving state and the cold-stream hibernation arena.
//!
//! The tiered stream-state story (see [`crate::shard`]) keeps a healthy
//! FSM-tier stream as a [`CompactStream`]: the compiled cursor, a
//! [`MicroHealth`] triage summary, and three scheduling words — ~96 bytes
//! of plain data, no heap edges. Because it is pointer-free it also
//! *hibernates* exactly: [`CompactStream::serialize_into`] flattens it to
//! a fixed-width little-endian record in a slab arena, and
//! [`CompactStream::deserialize`] rebuilds a bit-identical copy, which is
//! what makes the hibernate/wake action-equivalence guarantee a
//! round-trip property instead of a best-effort one.
//!
//! The arena is deliberately dumb: fixed-size records in a `Vec<u8>` slab
//! with a free list, indexed by stream key, evicting in hibernate order
//! (FIFO) once over capacity. Evicting a record forgets the stream — it
//! re-admits fresh on return, exactly like a stream the daemon never saw
//! — so the arena is a bounded cache of continuations, not a durability
//! promise.

use lahd_fsm::{CompiledCursor, FsmRunStats, SavedCursor};
use lahd_guard::MicroHealth;

use crate::stream_table::StreamTable;

/// Everything a healthy FSM-tier stream keeps while compact.
#[derive(Clone, Debug)]
pub struct CompactStream {
    /// The compiled-FSM execution state (state id + run statistics).
    pub cursor: CompiledCursor,
    /// Triage health counters (stuck input, unseen rate, band violations).
    pub health: MicroHealth,
    /// Decisions this stream has served (compact + resident combined).
    pub decisions: u64,
    /// Decision count at which the next full-guard audit is due.
    pub next_audit: u64,
    /// Shard tick of the last served decision (hibernation idleness).
    pub last_tick: u64,
}

/// Serialized record width: 8 (key) + 2+6pad (state) + 4×8 (stats) +
/// 8 (unseen_total) + 8+4+2+2+2+6pad (health) + 8 (decisions) +
/// 8 (next_audit). `last_tick` is deliberately not persisted — a woken
/// stream's idle clock restarts.
pub const REC_BYTES: usize = 96;

impl CompactStream {
    /// A fresh stream at the machine's start state.
    pub fn new(cursor: CompiledCursor, first_audit: u64) -> Self {
        Self {
            cursor,
            health: MicroHealth::new(),
            decisions: 0,
            next_audit: first_audit,
            last_tick: 0,
        }
    }

    /// Flattens into exactly [`REC_BYTES`] at `out` (little-endian).
    pub fn serialize_into(&self, key: u64, out: &mut [u8]) {
        assert_eq!(out.len(), REC_BYTES);
        let saved = self.cursor.save();
        let (last_hash, stuck_run, unseen_recent, oob_recent, pos) = self.health.to_parts();
        let mut w = Writer { out, at: 0 };
        w.u64(key);
        w.u64(saved.state as u64);
        w.u64(saved.stats.steps as u64);
        w.u64(saved.stats.unseen_observations as u64);
        w.u64(saved.stats.missing_transitions as u64);
        w.u64(saved.stats.stuck_steps as u64);
        w.u64(saved.unseen_total);
        w.u64(last_hash);
        w.u64(stuck_run as u64);
        w.u64(((unseen_recent as u64) << 32) | ((oob_recent as u64) << 16) | pos as u64);
        w.u64(self.decisions);
        w.u64(self.next_audit);
        debug_assert_eq!(w.at, REC_BYTES);
    }

    /// Rebuilds from [`CompactStream::serialize_into`] output; returns the
    /// stream key alongside the state.
    pub fn deserialize(rec: &[u8]) -> (u64, Self) {
        assert_eq!(rec.len(), REC_BYTES);
        let mut r = Reader { rec, at: 0 };
        let key = r.u64();
        let state = r.u64() as u16;
        let stats = FsmRunStats {
            steps: r.u64() as usize,
            unseen_observations: r.u64() as usize,
            missing_transitions: r.u64() as usize,
            stuck_steps: r.u64() as usize,
        };
        let unseen_total = r.u64();
        let last_hash = r.u64();
        let stuck_run = r.u64() as u32;
        let packed = r.u64();
        let health = MicroHealth::from_parts((
            last_hash,
            stuck_run,
            (packed >> 32) as u16,
            (packed >> 16) as u16,
            packed as u16,
        ));
        let decisions = r.u64();
        let next_audit = r.u64();
        (
            key,
            Self {
                cursor: CompiledCursor::restore(SavedCursor {
                    state,
                    stats,
                    unseen_total,
                }),
                health,
                decisions,
                next_audit,
                last_tick: 0,
            },
        )
    }
}

struct Writer<'a> {
    out: &'a mut [u8],
    at: usize,
}

impl Writer<'_> {
    fn u64(&mut self, v: u64) {
        self.out[self.at..self.at + 8].copy_from_slice(&v.to_le_bytes());
        self.at += 8;
    }
}

struct Reader<'a> {
    rec: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.rec[self.at..self.at + 8].try_into().unwrap());
        self.at += 8;
        v
    }
}

/// The serialized arena hibernated streams park in. Record slots are
/// tracked through the same generation-stamped [`StreamTable`] machinery
/// as live streams, but the payload here is a slab offset, not a boxed
/// ladder — a hibernated stream costs `REC_BYTES` + table overhead.
pub struct HibernationArena {
    data: Vec<u8>,
    /// stream key -> record slot (index into `data` / REC_BYTES).
    index: StreamTable<u32>,
    free: Vec<u32>,
    /// Hibernate-order queue for FIFO eviction; entries may be stale
    /// (woken streams) and are skipped by checking the index.
    order: std::collections::VecDeque<u64>,
    capacity: usize,
    evicted: u64,
}

impl HibernationArena {
    /// An arena bounded at `capacity` hibernated streams.
    pub fn new(capacity: usize) -> Self {
        Self {
            data: Vec::new(),
            index: StreamTable::with_capacity(64),
            free: Vec::new(),
            order: std::collections::VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    /// Hibernated stream count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the arena holds no streams.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Arena slab bytes currently allocated.
    pub fn arena_bytes(&self) -> u64 {
        self.data.capacity() as u64
    }

    /// Streams forgotten to keep the arena under capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Whether `key` is hibernating here.
    pub fn contains(&self, key: u64) -> bool {
        self.index.lookup(key).is_some()
    }

    /// Parks a compact stream. Overwrites a prior record for the same key
    /// (can happen when a stream hibernates, wakes, and hibernates again
    /// before its stale order entry cycles out).
    pub fn hibernate(&mut self, key: u64, stream: &CompactStream) {
        if let Some(r) = self.index.lookup(key) {
            let slot = *self.index.get(r).expect("fresh handle");
            let at = slot as usize * REC_BYTES;
            stream.serialize_into(key, &mut self.data[at..at + REC_BYTES]);
            return;
        }
        while self.index.len() >= self.capacity {
            let Some(victim) = self.order.pop_front() else {
                break;
            };
            if let Some(slot) = self.index.remove(victim) {
                self.free.push(slot);
                self.evicted += 1;
            }
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = (self.data.len() / REC_BYTES) as u32;
                self.data.resize(self.data.len() + REC_BYTES, 0);
                s
            }
        };
        let at = slot as usize * REC_BYTES;
        stream.serialize_into(key, &mut self.data[at..at + REC_BYTES]);
        self.index.insert(key, slot);
        self.order.push_back(key);
    }

    /// Wakes `key`, removing and rebuilding its record.
    pub fn wake(&mut self, key: u64) -> Option<CompactStream> {
        let slot = self.index.remove(key)?;
        let at = slot as usize * REC_BYTES;
        let (rec_key, stream) = CompactStream::deserialize(&self.data[at..at + REC_BYTES]);
        debug_assert_eq!(rec_key, key, "arena slot/key mismatch");
        self.free.push(slot);
        Some(stream)
    }

    /// Drops everything (bundle swap invalidates saved state ids).
    pub fn clear(&mut self) {
        self.data.clear();
        self.index.clear();
        self.free.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahd_guard::{obs_hash, MicroConfig};

    fn sample(decisions: u64) -> CompactStream {
        let mut s = CompactStream {
            cursor: CompiledCursor::restore(SavedCursor {
                state: 7,
                stats: FsmRunStats {
                    steps: 40,
                    unseen_observations: 3,
                    missing_transitions: 2,
                    stuck_steps: 1,
                },
                unseen_total: 9,
            }),
            health: MicroHealth::new(),
            decisions,
            next_audit: decisions + 4096,
            last_tick: 55,
        };
        let cfg = MicroConfig::default();
        for i in 0..13u64 {
            s.health
                .observe(&cfg, obs_hash(&[i as f32]), i % 3 == 0, i % 5 == 0);
        }
        s
    }

    #[test]
    fn serialize_roundtrips_bit_exactly() {
        let s = sample(123);
        let mut rec = [0u8; REC_BYTES];
        s.serialize_into(42, &mut rec);
        let (key, back) = CompactStream::deserialize(&rec);
        assert_eq!(key, 42);
        assert_eq!(back.cursor.save(), s.cursor.save());
        assert_eq!(back.health, s.health);
        assert_eq!(back.decisions, s.decisions);
        assert_eq!(back.next_audit, s.next_audit);
        assert_eq!(back.last_tick, 0, "idle clock restarts on wake");
    }

    #[test]
    fn compact_stream_stays_under_the_size_budget() {
        // The tentpole's target: healthy FSM-tier streams ≤256 B. The
        // in-memory record must leave room for slab + index overhead
        // (~32 B measured in PERF.md).
        assert!(
            std::mem::size_of::<CompactStream>() <= 128,
            "CompactStream grew to {} B",
            std::mem::size_of::<CompactStream>()
        );
        assert_eq!(REC_BYTES % 8, 0);
    }

    #[test]
    fn arena_parks_wakes_and_reuses_slots() {
        let mut arena = HibernationArena::new(64);
        arena.hibernate(1, &sample(10));
        arena.hibernate(2, &sample(20));
        assert_eq!(arena.len(), 2);
        assert!(arena.contains(1));
        let woken = arena.wake(1).expect("parked");
        assert_eq!(woken.decisions, 10);
        assert!(!arena.contains(1));
        assert!(arena.wake(1).is_none());
        // The freed slot is reused, not grown.
        let bytes = arena.arena_bytes();
        arena.hibernate(3, &sample(30));
        assert_eq!(arena.arena_bytes(), bytes);
        assert_eq!(arena.wake(3).expect("parked").decisions, 30);
    }

    #[test]
    fn over_capacity_evicts_oldest_first() {
        let mut arena = HibernationArena::new(2);
        arena.hibernate(1, &sample(1));
        arena.hibernate(2, &sample(2));
        arena.hibernate(3, &sample(3));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.evicted(), 1);
        assert!(!arena.contains(1), "oldest evicted");
        assert!(arena.contains(2) && arena.contains(3));
        // A woken stream's stale order entry is skipped, not evicted.
        arena.wake(2).expect("parked");
        arena.hibernate(4, &sample(4));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.evicted(), 1, "no eviction needed after wake");
        arena.hibernate(5, &sample(5));
        assert!(!arena.contains(3), "3 is now oldest");
        assert!(arena.contains(4) && arena.contains(5));
    }

    #[test]
    fn rehibernating_a_key_overwrites_in_place() {
        let mut arena = HibernationArena::new(8);
        arena.hibernate(9, &sample(1));
        arena.hibernate(9, &sample(99));
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.wake(9).expect("parked").decisions, 99);
    }
}
