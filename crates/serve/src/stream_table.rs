//! The shard's stream table: a slab with generation-stamped slots behind
//! an open-addressing index, replacing `HashMap<u64, StreamState>`.
//!
//! Why not a `HashMap`? Three reasons, all from the million-stream goal:
//!
//! - **Slot handles.** Batch partitioning wants to touch each stream
//!   several times per drain (tier check, cursor read, outcome apply).
//!   The slab hands out a dense `u32` slot index on lookup, so the later
//!   touches are direct indexing instead of re-hashing the key — which is
//!   also what fixes the old O(n²) `batched_streams.contains()` scan (see
//!   [`StreamSet`]).
//! - **Generation stamps.** Slots are recycled through a free list; a
//!   stale handle (held across a hibernate/evict) must fail closed rather
//!   than alias the slot's new tenant. Every slot carries a generation
//!   counter, bumped on vacate, and [`StreamRef`] carries the generation
//!   it was minted under.
//! - **Predictable memory.** Entries live contiguously; the index is a
//!   flat `(key, slot)` array with linear probing and backward-shift
//!   deletion. Per-stream overhead is ~16 B of index (at ≤⅞ load the
//!   probe sequences stay short) + 16 B of slot header, measurable and
//!   flat — the bytes/stream numbers in PERF.md count them.

/// A generation-stamped handle into a [`StreamTable`]. Cheap to copy and
/// safe to hold across mutations: a handle whose slot was vacated (or
/// re-let) since minting simply stops resolving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamRef {
    slot: u32,
    generation: u32,
}

struct Slot<T> {
    /// Bumped every time the slot is vacated; odd = occupied, even = free
    /// (so a handle can never resolve against a free slot even if
    /// generations wrap).
    generation: u32,
    /// The occupying stream's key (meaningful only while occupied).
    key: u64,
    value: Option<T>,
}

/// Flat open-addressing map `key -> slot` (linear probing, backward-shift
/// deletion, power-of-two capacity, ≤⅞ load).
struct Index {
    /// `(key, slot+1)`; slot 0 means empty (keys are only meaningful next
    /// to a non-zero slot, so no tombstones are needed).
    entries: Vec<(u64, u32)>,
    mask: usize,
    len: usize,
}

impl Index {
    fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(16);
        Self {
            entries: vec![(0, 0); cap],
            mask: cap - 1,
            len: 0,
        }
    }

    fn hash(key: u64) -> usize {
        // Fibonacci scramble; stream ids are often sequential.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
    }

    fn find(&self, key: u64) -> Option<u32> {
        let mut i = Self::hash(key) & self.mask;
        loop {
            let (k, s) = self.entries[i];
            if s == 0 {
                return None;
            }
            if k == key {
                return Some(s - 1);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn insert(&mut self, key: u64, slot: u32) {
        if (self.len + 1) * 8 > self.entries.len() * 7 {
            self.grow();
        }
        let mut i = Self::hash(key) & self.mask;
        loop {
            let (k, s) = self.entries[i];
            if s == 0 {
                self.entries[i] = (key, slot + 1);
                self.len += 1;
                return;
            }
            debug_assert_ne!(k, key, "insert over live key");
            i = (i + 1) & self.mask;
        }
    }

    fn remove(&mut self, key: u64) -> Option<u32> {
        let mut i = Self::hash(key) & self.mask;
        loop {
            let (k, s) = self.entries[i];
            if s == 0 {
                return None;
            }
            if k == key {
                break;
            }
            i = (i + 1) & self.mask;
        }
        let removed = self.entries[i].1 - 1;
        self.len -= 1;
        // Backward-shift deletion keeps probe chains tombstone-free: a
        // later entry moves into the hole unless its home slot lies
        // cyclically inside (hole, j] — moving such an entry before its
        // home would break its own probe chain.
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let (k, s) = self.entries[j];
            if s == 0 {
                break;
            }
            let home = Self::hash(k) & self.mask;
            let home_inside = if j > hole {
                home > hole && home <= j
            } else {
                home > hole || home <= j
            };
            if !home_inside {
                self.entries[hole] = self.entries[j];
                hole = j;
            }
        }
        self.entries[hole] = (0, 0);
        Some(removed)
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.entries, vec![(0, 0); (self.mask + 1) * 2]);
        self.mask = self.entries.len() - 1;
        self.len = 0;
        for (k, s) in old {
            if s != 0 {
                self.insert(k, s - 1);
            }
        }
    }
}

/// The slab + index pair; see the module docs.
pub struct StreamTable<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    index: Index,
}

impl<T> StreamTable<T> {
    /// An empty table sized for about `cap` streams.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap.min(1 << 20)),
            free: Vec::new(),
            index: Index::with_capacity(cap.min(1 << 20) * 8 / 7),
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.index.len
    }

    /// Whether no streams are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of slots ever allocated (occupied + free-listed) — the
    /// clock sweep's address space.
    pub fn slot_span(&self) -> usize {
        self.slots.len()
    }

    /// Resolves `key` to a stamped handle.
    pub fn lookup(&self, key: u64) -> Option<StreamRef> {
        let slot = self.index.find(key)?;
        Some(StreamRef {
            slot,
            generation: self.slots[slot as usize].generation,
        })
    }

    /// Inserts a new stream; the key must not be present.
    pub fn insert(&mut self, key: u64, value: T) -> StreamRef {
        debug_assert!(self.index.find(key).is_none(), "duplicate stream key");
        let slot = match self.free.pop() {
            Some(s) => {
                let cell = &mut self.slots[s as usize];
                cell.generation = cell.generation.wrapping_add(1); // even -> odd
                cell.key = key;
                cell.value = Some(value);
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 1,
                    key,
                    value: Some(value),
                });
                s
            }
        };
        self.index.insert(key, slot);
        StreamRef {
            slot,
            generation: self.slots[slot as usize].generation,
        }
    }

    /// The entry behind a handle, if the handle is still current.
    pub fn get_mut(&mut self, r: StreamRef) -> Option<&mut T> {
        let cell = self.slots.get_mut(r.slot as usize)?;
        if cell.generation != r.generation {
            return None;
        }
        cell.value.as_mut()
    }

    /// Read-only access behind a handle.
    pub fn get(&self, r: StreamRef) -> Option<&T> {
        let cell = self.slots.get(r.slot as usize)?;
        if cell.generation != r.generation {
            return None;
        }
        cell.value.as_ref()
    }

    /// The key occupying a handle's slot (handles are minted per key, so
    /// this is the reverse lookup).
    pub fn key_of(&self, r: StreamRef) -> Option<u64> {
        let cell = self.slots.get(r.slot as usize)?;
        (cell.generation == r.generation).then_some(cell.key)
    }

    /// Vacates `key`'s slot, returning its entry. The slot's generation
    /// bumps, so outstanding handles die.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let slot = self.index.remove(key)?;
        let cell = &mut self.slots[slot as usize];
        cell.generation = cell.generation.wrapping_add(1); // odd -> even
        self.free.push(slot);
        cell.value.take()
    }

    /// Visits the occupied slot at clock position `pos % slot_span()`,
    /// returning its key (for a sweep that must not hold a borrow).
    pub fn key_at_clock(&self, pos: usize) -> Option<u64> {
        if self.slots.is_empty() {
            return None;
        }
        let cell = &self.slots[pos % self.slots.len()];
        (cell.generation % 2 == 1).then_some(cell.key)
    }

    /// Drops everything (bundle swap / panic restart).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.index = Index::with_capacity(16);
    }
}

/// A reusable small set of stream keys for per-drain batch membership —
/// the replacement for probing a `Vec<u64>` with `.contains()` per
/// request (O(n²) across a batch). Open addressing over the same scramble
/// as [`StreamTable`]; `clear` is O(inserted) via an undo log, so a
/// mostly-empty drain costs nothing.
pub struct StreamSet {
    entries: Vec<u64>,
    used: Vec<u32>,
    mask: usize,
}

/// The sentinel for an empty [`StreamSet`] cell; `u64::MAX` is not a
/// routable stream id (the protocol caps ids below it in practice, and a
/// collision would only cost one redundant scalar-path decision).
const EMPTY: u64 = u64::MAX;

impl StreamSet {
    /// A set sized for about `cap` members per drain.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = (cap * 2).next_power_of_two().max(32);
        Self {
            entries: vec![EMPTY; cap],
            used: Vec::new(),
            mask: cap - 1,
        }
    }

    /// Inserts `key`; returns whether it was newly added.
    pub fn insert(&mut self, key: u64) -> bool {
        if self.used.len() * 2 >= self.entries.len() {
            self.grow();
        }
        let mut i = Index::hash(key) & self.mask;
        loop {
            let k = self.entries[i];
            if k == EMPTY {
                self.entries[i] = key;
                self.used.push(i as u32);
                return true;
            }
            if k == key {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Empties the set in O(members).
    pub fn clear(&mut self) {
        for &i in &self.used {
            self.entries[i as usize] = EMPTY;
        }
        self.used.clear();
    }

    fn grow(&mut self) {
        let mut bigger = StreamSet::with_capacity(self.entries.len());
        for &i in &self.used {
            bigger.insert(self.entries[i as usize]);
        }
        *self = bigger;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut t: StreamTable<String> = StreamTable::with_capacity(4);
        let a = t.insert(10, "a".into());
        let b = t.insert(20, "b".into());
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).map(String::as_str), Some("a"));
        assert_eq!(t.lookup(20), Some(b));
        assert_eq!(t.key_of(b), Some(20));
        assert_eq!(t.remove(10).as_deref(), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(10), None);
        // The vacated handle fails closed.
        assert!(t.get(a).is_none());
        assert!(t.key_of(a).is_none());
    }

    #[test]
    fn recycled_slot_does_not_honour_stale_handles() {
        let mut t: StreamTable<u32> = StreamTable::with_capacity(2);
        let a = t.insert(1, 100);
        t.remove(1);
        let b = t.insert(2, 200);
        // Slot recycled for a new tenant...
        assert_eq!(b.slot, a.slot);
        // ...but the old handle must not alias it.
        assert!(t.get(a).is_none());
        assert_eq!(t.get(b), Some(&200));
    }

    #[test]
    fn survives_heavy_churn_against_a_model() {
        use std::collections::HashMap;
        let mut t: StreamTable<u64> = StreamTable::with_capacity(8);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = 0x1234_5678u64;
        for step in 0..20_000u64 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (rng >> 33) % 512;
            if rng & 1 == 0 {
                if !model.contains_key(&key) {
                    t.insert(key, step);
                    model.insert(key, step);
                }
            } else {
                assert_eq!(t.remove(key), model.remove(&key));
            }
            if step % 1000 == 0 {
                assert_eq!(t.len(), model.len());
                for (&k, &v) in &model {
                    let r = t.lookup(k).expect("model key present");
                    assert_eq!(t.get(r), Some(&v), "key {k}");
                }
            }
        }
    }

    #[test]
    fn clock_positions_cover_occupied_slots() {
        let mut t: StreamTable<u8> = StreamTable::with_capacity(4);
        for k in 0..10u64 {
            t.insert(k, k as u8);
        }
        t.remove(3);
        t.remove(7);
        let mut seen: Vec<u64> = (0..t.slot_span())
            .filter_map(|p| t.key_at_clock(p))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn stream_set_dedups_and_clears_cheaply() {
        let mut s = StreamSet::with_capacity(4);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(6));
        // Growth preserves membership.
        for k in 100..200u64 {
            assert!(s.insert(k), "fresh key {k}");
        }
        assert!(!s.insert(150));
        s.clear();
        assert!(s.insert(5), "cleared set forgets members");
        assert!(s.insert(150));
    }
}
