//! A minimal synchronous client for the serving protocol.
//!
//! [`ServeClient`] is a thin framing wrapper over a Unix-socket stream.
//! Decision responses arrive whenever their shard answers, so callers with
//! multiple decisions in flight must correlate by `req_id`; [`ServeClient::call`]
//! (send one, wait one) is only safe when no decisions are outstanding —
//! the pattern every control message (stats, reload, shutdown, chaos)
//! follows.
//!
//! Transient-fault handling: [`ServeClient::connect_backoff`] and
//! [`ServeClient::call_idempotent`] retry through a [`RetryPolicy`] —
//! bounded attempts, exponential backoff capped at `max_backoff`, and
//! deterministic jitter from the policy's seed (so two clients spawned
//! together don't hammer the socket in lockstep). Exhaustion is a typed
//! [`ClientError::Exhausted`] carrying the last underlying error. Decide
//! requests are deliberately *not* retryable: a retry after a lost reply
//! would advance the stream's cursor twice.

use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::protocol::{read_frame, write_frame, Request, Response};

/// Bounded-retry knobs for [`ServeClient::connect_backoff`] and
/// [`ServeClient::call_idempotent`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts before giving up (at least 1).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Jitter stream seed; same seed → same backoff schedule (the chaos
    /// harness's reproducibility requirement).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 5,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before attempt `attempt + 1` (attempt is
    /// 0-based): half the capped exponential delay plus a deterministic
    /// pseudo-random slice of the other half.
    fn backoff(&self, attempt: u32) -> Duration {
        let base = self.base_backoff.as_micros().max(1) as u64;
        let cap = self.max_backoff.as_micros().max(1) as u64;
        let delay = base
            .checked_shl(attempt.min(32))
            .unwrap_or(u64::MAX)
            .min(cap);
        // xorshift over (seed, attempt): deterministic, cheap, seed-keyed.
        let mut x = self.jitter_seed ^ ((attempt as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        Duration::from_micros(delay / 2 + x % (delay / 2 + 1))
    }
}

/// A typed client failure.
#[derive(Debug)]
pub enum ClientError {
    /// A non-retryable I/O or protocol failure.
    Io(std::io::Error),
    /// Every retry attempt failed; `last` is the final underlying error.
    Exhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The last error observed.
        last: std::io::Error,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Error kinds worth retrying: the daemon hasn't bound yet, dropped the
/// connection mid-restart, or closed a half-written frame.
fn transient(kind: std::io::ErrorKind) -> bool {
    use std::io::ErrorKind::*;
    matches!(
        kind,
        NotFound
            | ConnectionRefused
            | ConnectionReset
            | ConnectionAborted
            | BrokenPipe
            | UnexpectedEof
            | Interrupted
            | WouldBlock
    )
}

/// One connection to a serving daemon.
pub struct ServeClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    /// Remembered for reconnects on the retrying paths.
    socket: PathBuf,
}

impl ServeClient {
    /// Connects to the daemon at `socket`.
    pub fn connect(socket: &Path) -> std::io::Result<Self> {
        let stream = UnixStream::connect(socket)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            socket: socket.to_path_buf(),
        })
    }

    /// Connects, retrying for up to `timeout` while the daemon binds its
    /// socket (for harnesses that just spawned it).
    pub fn connect_retry(socket: &Path, timeout: Duration) -> std::io::Result<Self> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match Self::connect(socket) {
                Ok(client) => return Ok(client),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }

    /// Connects under `policy`: up to `attempts` tries with capped,
    /// jittered exponential backoff between them. Non-transient errors
    /// fail immediately; exhaustion is typed.
    pub fn connect_backoff(socket: &Path, policy: &RetryPolicy) -> Result<Self, ClientError> {
        let attempts = policy.attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            match Self::connect(socket) {
                Ok(client) => return Ok(client),
                Err(e) if !transient(e.kind()) => return Err(ClientError::Io(e)),
                Err(e) => last = Some(e),
            }
            if attempt + 1 < attempts {
                std::thread::sleep(policy.backoff(attempt));
            }
        }
        Err(ClientError::Exhausted {
            attempts,
            last: last.expect("at least one attempt ran"),
        })
    }

    /// Sends one request without waiting for anything.
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        write_frame(&mut self.writer, &req.encode())
    }

    /// Receives the next response (blocking); EOF is an error.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let frame = read_frame(&mut self.reader)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed connection",
            )
        })?;
        Response::decode(&frame)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Sends one request and waits for one response. Only valid when no
    /// decision replies are outstanding on this connection.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        self.send(req)?;
        self.recv()
    }

    /// Health probe: one [`Request::Ping`] round trip.
    pub fn ping(&mut self) -> std::io::Result<()> {
        match self.call(&Request::Ping)? {
            Response::Ok => Ok(()),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected ping response {other:?}"),
            )),
        }
    }

    /// [`ServeClient::call`] with transient-error retry: on a retryable
    /// failure the client reconnects (jittered backoff) and resends.
    /// Only for *idempotent* requests — pings, stats, reloads of the same
    /// bundle. [`Request::Decide`] is rejected outright: resending a
    /// decision after a lost reply would advance the stream twice.
    pub fn call_idempotent(
        &mut self,
        req: &Request,
        policy: &RetryPolicy,
    ) -> Result<Response, ClientError> {
        if matches!(req, Request::Decide { .. }) {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "decide requests are not idempotent and cannot be auto-retried",
            )));
        }
        let attempts = policy.attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            match self.call(req) {
                Ok(resp) => return Ok(resp),
                Err(e) if !transient(e.kind()) => return Err(ClientError::Io(e)),
                Err(e) => last = Some(e),
            }
            if attempt + 1 < attempts {
                std::thread::sleep(policy.backoff(attempt));
                if let Ok(fresh) = Self::connect(&self.socket) {
                    *self = fresh;
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts,
            last: last.expect("at least one attempt ran"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_backoff_exhausts_with_a_typed_error() {
        let nowhere = std::env::temp_dir().join("lahd_client_no_such_daemon.sock");
        let _ = std::fs::remove_file(&nowhere);
        let policy = RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(200),
            jitter_seed: 1,
        };
        match ServeClient::connect_backoff(&nowhere, &policy) {
            Err(ClientError::Exhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert!(transient(last.kind()), "kind {:?}", last.kind());
            }
            Ok(_) => panic!("expected exhaustion, got a connection"),
            Err(other) => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn decide_is_never_auto_retried() {
        let nowhere = std::env::temp_dir().join("lahd_client_decide_guard.sock");
        let _ = std::fs::remove_file(&nowhere);
        // A client that never connected still enforces the guard first.
        let listener =
            std::os::unix::net::UnixListener::bind(&nowhere).expect("bind scratch socket");
        let mut client = ServeClient::connect(&nowhere).expect("connect to scratch socket");
        let err = client
            .call_idempotent(
                &Request::Decide {
                    req_id: 1,
                    stream: 1,
                    deadline_us: 0,
                    obs: vec![],
                },
                &RetryPolicy::default(),
            )
            .unwrap_err();
        match err {
            ClientError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput),
            other => panic!("expected InvalidInput, got {other:?}"),
        }
        drop(listener);
        let _ = std::fs::remove_file(&nowhere);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            attempts: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
            jitter_seed: 99,
        };
        let a: Vec<Duration> = (0..8).map(|i| policy.backoff(i)).collect();
        let b: Vec<Duration> = (0..8).map(|i| policy.backoff(i)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for (i, d) in a.iter().enumerate() {
            assert!(
                *d <= policy.max_backoff,
                "attempt {i} backoff {d:?} over cap"
            );
            assert!(*d >= policy.base_backoff / 2, "attempt {i} below half-base");
        }
        let other = RetryPolicy {
            jitter_seed: 100,
            ..policy
        };
        assert_ne!(
            (0..8).map(|i| other.backoff(i)).collect::<Vec<_>>(),
            a,
            "different seed, different jitter"
        );
    }
}
