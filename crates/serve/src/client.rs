//! A minimal synchronous client for the serving protocol.
//!
//! [`ServeClient`] is a thin framing wrapper over a Unix-socket stream.
//! Decision responses arrive whenever their shard answers, so callers with
//! multiple decisions in flight must correlate by `req_id`; [`ServeClient::call`]
//! (send one, wait one) is only safe when no decisions are outstanding —
//! the pattern every control message (stats, reload, shutdown, chaos)
//! follows.

use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use crate::protocol::{read_frame, write_frame, Request, Response};

/// One connection to a serving daemon.
pub struct ServeClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl ServeClient {
    /// Connects to the daemon at `socket`.
    pub fn connect(socket: &Path) -> std::io::Result<Self> {
        let stream = UnixStream::connect(socket)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connects, retrying for up to `timeout` while the daemon binds its
    /// socket (for harnesses that just spawned it).
    pub fn connect_retry(socket: &Path, timeout: Duration) -> std::io::Result<Self> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match Self::connect(socket) {
                Ok(client) => return Ok(client),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }

    /// Sends one request without waiting for anything.
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        write_frame(&mut self.writer, &req.encode())
    }

    /// Receives the next response (blocking); EOF is an error.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let frame = read_frame(&mut self.reader)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed connection",
            )
        })?;
        Response::decode(&frame)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Sends one request and waits for one response. Only valid when no
    /// decision replies are outstanding on this connection.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        self.send(req)?;
        self.recv()
    }
}
