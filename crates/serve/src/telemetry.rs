//! The off-path telemetry sidecar: shard-local accumulation, a bounded
//! channel, one aggregator thread.
//!
//! The decision path used to bump shared atomics per decision
//! (`served`, `tier_decisions[...]`) — harmless at 2 shards, a cache-line
//! ping-pong machine at 16. Now every shard owns a plain
//! [`ShardTelemetry`] (no atomics, no sharing) and flushes *deltas* over
//! a bounded channel at batch boundaries; a dedicated aggregator thread
//! merges them and publishes an immutable [`TelemetrySnapshot`] the stats
//! endpoint reads. Decision-path cost: plain integer adds, one `try_send`
//! per batch.
//!
//! Consistency: the chaos tests assert exact totals (`served ==
//! requests`) immediately after a run, so "eventually consistent" is not
//! good enough. Two mechanisms close the gap deterministically:
//!
//! - **flush-before-reply** — a shard enqueues its telemetry delta
//!   *before* sending the batch's replies, so any observable response is
//!   preceded by its delta in the channel;
//! - **sync barrier** — a stats request posts [`TelemetryMsg::Sync`]
//!   through the same FIFO channel and waits for the aggregator's ack;
//!   by FIFO, every delta flushed before the request is merged when the
//!   snapshot is taken.
//!
//! If the channel is full at flush time the shard *keeps accumulating*
//! and retries at the next boundary — deltas are never dropped, only
//! deferred (the one exception: a worker panic loses the counters since
//! its last flush, which the chaos tests tolerate by asserting on
//! pre-chaos rounds only).

use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::metrics::{LatencyHistogram, TIERS};

/// Per-shard counters and gauges, accumulated without synchronisation.
/// All counter fields are monotonic within one flush interval; gauges
/// (`compact`, `resident`, `hibernated`, `arena_bytes`) are absolute
/// levels the aggregator replaces per shard instead of summing.
#[derive(Clone, Debug, Default)]
pub struct ShardTelemetry {
    /// Decisions answered on the guarded/compact path.
    pub served: u64,
    /// Decisions shed in the shard (stream-table capacity).
    pub shed: u64,
    /// Decisions whose deadline expired in the queue.
    pub deadline_misses: u64,
    /// Decisions per ladder tier.
    pub tier_decisions: [u64; TIERS],
    /// Queue-to-reply latency histogram.
    pub latency: LatencyHistogram,
    /// Compact streams promoted to the full resident ladder.
    pub materializations: u64,
    /// Resident streams released back to compact records.
    pub releases: u64,
    /// Periodic full-guard audits started.
    pub audits: u64,
    /// Streams parked into the hibernation arena.
    pub hibernates: u64,
    /// Streams woken from the arena.
    pub wakes: u64,
    /// Hibernated streams forgotten by arena eviction.
    pub evictions: u64,
    /// Gauge: compact streams resident in the table.
    pub compact: u64,
    /// Gauge: streams holding a full materialized ladder.
    pub resident: u64,
    /// Gauge: streams parked in the arena.
    pub hibernated: u64,
    /// Gauge: arena slab bytes.
    pub arena_bytes: u64,
}

impl ShardTelemetry {
    /// Records one served decision.
    pub fn record_served(&mut self, tier: usize, latency_ns: u64) {
        self.served += 1;
        if let Some(c) = self.tier_decisions.get_mut(tier) {
            *c += 1;
        }
        self.latency.record(latency_ns);
    }

    /// Whether a flush would carry any information.
    fn is_quiet(&self) -> bool {
        self.served == 0
            && self.shed == 0
            && self.deadline_misses == 0
            && self.materializations == 0
            && self.releases == 0
            && self.audits == 0
            && self.hibernates == 0
            && self.wakes == 0
            && self.evictions == 0
    }
}

/// What travels over the sidecar channel.
pub enum TelemetryMsg {
    /// A shard's accumulated delta (counters) + current gauges.
    Delta {
        /// Originating shard index (gauges replace per shard).
        shard: usize,
        /// The accumulated telemetry since the last successful flush.
        delta: Box<ShardTelemetry>,
    },
    /// Merge everything queued ahead of this message, publish a snapshot,
    /// then ack — the stats endpoint's read barrier.
    Sync(SyncSender<()>),
}

/// An immutable merged view the stats endpoint renders from.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// Summed counters across shards (gauges summed over latest-per-shard).
    pub totals: ShardTelemetry,
}

/// The shard-facing half: a sender plus the published snapshot cell.
#[derive(Clone)]
pub struct TelemetryHub {
    /// Bounded channel into the aggregator.
    pub tx: SyncSender<TelemetryMsg>,
    snapshot: Arc<Mutex<Arc<TelemetrySnapshot>>>,
}

impl TelemetryHub {
    /// Attempts to flush `local` as a delta from `shard`; returns whether
    /// the delta actually left. On success the accumulator is reset
    /// (gauges are re-stamped by the caller each flush); on a full channel
    /// the accumulator is left intact for the next boundary. Quiet
    /// accumulators are skipped unless `force` (gauge-only changes ride a
    /// forced flush).
    pub fn flush(&self, shard: usize, local: &mut ShardTelemetry, force: bool) -> bool {
        if local.is_quiet() && !force {
            return false;
        }
        let delta = Box::new(std::mem::take(local));
        match self.tx.try_send(TelemetryMsg::Delta { shard, delta }) {
            Ok(()) => true,
            Err(TrySendError::Full(TelemetryMsg::Delta { delta, .. })) => {
                // Put the accumulator back; retry next boundary.
                *local = *delta;
                false
            }
            Err(_) => true, // aggregator gone (shutdown); nothing to retry for
        }
    }

    /// The latest published snapshot (no barrier; see [`TelemetryHub::sync`]).
    pub fn snapshot(&self) -> Arc<TelemetrySnapshot> {
        self.snapshot.lock().unwrap().clone()
    }

    /// Read barrier: waits (bounded) until every delta queued before this
    /// call is merged, then returns the fresh snapshot. Falls back to the
    /// stale snapshot if the aggregator is gone (shutdown races).
    pub fn sync(&self) -> Arc<TelemetrySnapshot> {
        let (ack_tx, ack_rx) = std::sync::mpsc::sync_channel(1);
        if self.tx.send(TelemetryMsg::Sync(ack_tx)).is_ok() {
            let _ = ack_rx.recv_timeout(Duration::from_secs(2));
        }
        self.snapshot()
    }
}

/// Builds the hub + aggregator state pair. `capacity` bounds the channel
/// (shards block nothing on overflow — they defer, see module docs).
pub fn telemetry_channel(capacity: usize) -> (TelemetryHub, Receiver<TelemetryMsg>) {
    let (tx, rx) = std::sync::mpsc::sync_channel(capacity.max(1));
    (
        TelemetryHub {
            tx,
            snapshot: Arc::new(Mutex::new(Arc::new(TelemetrySnapshot::default()))),
        },
        rx,
    )
}

/// The aggregator thread body: drain deltas, merge, publish. Exits when
/// every sender hangs up or `shutdown` reads true on an idle interval.
pub fn run_aggregator(
    rx: Receiver<TelemetryMsg>,
    hub: TelemetryHub,
    shards: usize,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
) {
    let mut counters = ShardTelemetry::default();
    let mut gauges: Vec<(u64, u64, u64, u64)> = vec![(0, 0, 0, 0); shards];
    loop {
        let msg = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(msg) => msg,
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(std::sync::atomic::Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        match msg {
            TelemetryMsg::Delta { shard, delta } => {
                counters.served += delta.served;
                counters.shed += delta.shed;
                counters.deadline_misses += delta.deadline_misses;
                for (a, b) in counters
                    .tier_decisions
                    .iter_mut()
                    .zip(&delta.tier_decisions)
                {
                    *a += b;
                }
                counters.latency.merge(&delta.latency);
                counters.materializations += delta.materializations;
                counters.releases += delta.releases;
                counters.audits += delta.audits;
                counters.hibernates += delta.hibernates;
                counters.wakes += delta.wakes;
                counters.evictions += delta.evictions;
                if let Some(g) = gauges.get_mut(shard) {
                    *g = (
                        delta.compact,
                        delta.resident,
                        delta.hibernated,
                        delta.arena_bytes,
                    );
                }
                publish(&hub, &counters, &gauges);
            }
            TelemetryMsg::Sync(ack) => {
                publish(&hub, &counters, &gauges);
                let _ = ack.try_send(());
            }
        }
    }
}

fn publish(hub: &TelemetryHub, counters: &ShardTelemetry, gauges: &[(u64, u64, u64, u64)]) {
    let mut totals = counters.clone();
    for &(c, r, h, a) in gauges {
        totals.compact += c;
        totals.resident += r;
        totals.hibernated += h;
        totals.arena_bytes += a;
    }
    *hub.snapshot.lock().unwrap() = Arc::new(TelemetrySnapshot { totals });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn deltas_merge_and_sync_is_a_read_barrier() {
        let (hub, rx) = telemetry_channel(16);
        let shutdown = Arc::new(AtomicBool::new(false));
        let agg = {
            let hub = hub.clone();
            let shutdown = shutdown.clone();
            std::thread::spawn(move || run_aggregator(rx, hub, 2, shutdown))
        };
        let mut a = ShardTelemetry::default();
        a.record_served(0, 1000);
        a.record_served(1, 2000);
        a.compact = 5;
        let mut b = ShardTelemetry::default();
        b.record_served(0, 1500);
        b.shed = 2;
        b.compact = 7;
        b.hibernated = 3;
        hub.flush(0, &mut a, false);
        hub.flush(1, &mut b, false);
        assert_eq!(a.served, 0, "flush takes the accumulator");
        let snap = hub.sync();
        assert_eq!(snap.totals.served, 3);
        assert_eq!(snap.totals.shed, 2);
        assert_eq!(snap.totals.tier_decisions[0], 2);
        assert_eq!(snap.totals.tier_decisions[1], 1);
        assert_eq!(snap.totals.compact, 12, "gauges sum across shards");
        assert_eq!(snap.totals.hibernated, 3);
        assert_eq!(snap.totals.latency.len(), 3);
        // Gauges replace per shard: a later flush from shard 1 updates,
        // not doubles.
        let mut b2 = ShardTelemetry::default();
        b2.record_served(0, 100);
        b2.compact = 1;
        hub.flush(1, &mut b2, false);
        let snap = hub.sync();
        assert_eq!(snap.totals.compact, 6);
        assert_eq!(snap.totals.served, 4);
        shutdown.store(true, std::sync::atomic::Ordering::Release);
        drop(hub);
        agg.join().unwrap();
    }

    #[test]
    fn full_channel_defers_instead_of_dropping() {
        let (hub, rx) = telemetry_channel(1);
        let mut t = ShardTelemetry::default();
        t.record_served(0, 10);
        hub.flush(0, &mut t, false);
        // Channel now full; the second flush must put the delta back.
        let mut t2 = ShardTelemetry::default();
        t2.record_served(2, 20);
        t2.shed = 1;
        hub.flush(0, &mut t2, false);
        assert_eq!(t2.served, 1, "deferred, not dropped");
        assert_eq!(t2.shed, 1);
        // Quiet accumulators are skipped without touching the channel.
        let mut quiet = ShardTelemetry::default();
        quiet.compact = 9;
        hub.flush(0, &mut quiet, false);
        assert_eq!(quiet.compact, 9, "quiet flush skipped");
        drop(rx);
    }
}
