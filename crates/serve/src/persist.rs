//! Crash-safe persistence: per-shard checkpoint segments + a write-ahead
//! journal for the membership changes between checkpoints.
//!
//! The durable unit is one shard. Each shard owns two files under the
//! daemon's state directory:
//!
//! - `shard-{i}.ckpt` — a checkpoint segment: a fixed header (magic, the
//!   shard tick at capture, the table/arena record counts) followed by one
//!   length-prefixed, FNV-checksummed frame per [`crate::CompactStream`]
//!   record (table records first, arena records after). Rotation is
//!   atomic: the new segment is written to `shard-{i}.ckpt.tmp`, synced,
//!   and renamed over the old one — a reader never observes a half-written
//!   checkpoint, only the previous complete one.
//! - `shard-{i}.wal` — the journal: magic plus fixed-width checksummed
//!   records logging stream *membership* changes since the last
//!   checkpoint (admits of new streams, arena evictions). Replay is
//!   idempotent (admit-if-absent, evict-if-present), so the
//!   crash-between-rename-and-journal-reset window is safe: replaying ops
//!   already folded into the checkpoint changes nothing.
//!
//! Recovery is total — it never panics and never errors. A torn tail
//! (frame length field short, wrong, or payload cut off) ends the scan:
//! everything before it is recovered, everything after is counted lost. A
//! checksum mismatch inside an intact frame quarantines that one record
//! and continues — the length field kept the scan aligned. Both losses
//! are surfaced in [`RecoveredShard::quarantined`]; the caller counts,
//! reports, and serves with what survived.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::compact::REC_BYTES;

/// First 8 bytes of every checkpoint segment.
pub const CKPT_MAGIC: [u8; 8] = *b"LAHDCKP1";

/// First 8 bytes of every journal file.
pub const WAL_MAGIC: [u8; 8] = *b"LAHDWAL1";

/// Checkpoint header: magic + tick + table count + arena count.
pub const CKPT_HEADER_BYTES: usize = 32;

/// Per-record frame overhead: `u32` payload length + `u64` FNV checksum.
pub const FRAME_OVERHEAD: usize = 12;

/// Journal record width: `u8` op + `u64` key + `u64` FNV checksum.
pub const WAL_REC_BYTES: usize = 17;

/// Journal op: a new stream was admitted to the shard.
pub const WAL_ADMIT: u8 = 1;

/// Journal op: a hibernated stream was evicted (forgotten) under arena
/// pressure.
pub const WAL_EVICT: u8 = 2;

/// FNV-1a over `bytes` — the same hash the rest of the serving layer uses
/// for action checksums and shard routing.
pub fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Path of shard `shard`'s checkpoint segment under `dir`.
pub fn ckpt_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.ckpt"))
}

/// Path of shard `shard`'s journal under `dir`.
pub fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.wal"))
}

/// Encodes a checkpoint segment. `table` and `arena` are flat slabs of
/// [`REC_BYTES`]-wide records (the table's compact streams and the
/// hibernation arena's parked ones).
pub fn encode_checkpoint(tick: u64, table: &[u8], arena: &[u8]) -> Vec<u8> {
    debug_assert_eq!(table.len() % REC_BYTES, 0);
    debug_assert_eq!(arena.len() % REC_BYTES, 0);
    let n_table = (table.len() / REC_BYTES) as u64;
    let n_arena = (arena.len() / REC_BYTES) as u64;
    let mut out = Vec::with_capacity(
        CKPT_HEADER_BYTES + (table.len() + arena.len()) / REC_BYTES * (REC_BYTES + FRAME_OVERHEAD),
    );
    out.extend_from_slice(&CKPT_MAGIC);
    out.extend_from_slice(&tick.to_le_bytes());
    out.extend_from_slice(&n_table.to_le_bytes());
    out.extend_from_slice(&n_arena.to_le_bytes());
    for rec in table
        .chunks_exact(REC_BYTES)
        .chain(arena.chunks_exact(REC_BYTES))
    {
        out.extend_from_slice(&(REC_BYTES as u32).to_le_bytes());
        out.extend_from_slice(&fnv(rec).to_le_bytes());
        out.extend_from_slice(rec);
    }
    out
}

/// What a checkpoint scan recovered; see the module docs for the torn-tail
/// vs quarantine distinction.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct DecodedCheckpoint {
    /// Shard tick the segment was captured at.
    pub tick: u64,
    /// Recovered table records, [`REC_BYTES`] each, in segment order.
    pub table: Vec<u8>,
    /// Recovered arena records, [`REC_BYTES`] each, in segment order.
    pub arena: Vec<u8>,
    /// Records the header promised but the scan could not recover —
    /// checksum failures plus everything lost to a torn tail.
    pub quarantined: u64,
}

impl DecodedCheckpoint {
    /// Records actually recovered (table + arena).
    pub fn recovered(&self) -> u64 {
        ((self.table.len() + self.arena.len()) / REC_BYTES) as u64
    }
}

/// Scans a checkpoint segment. `None` means the header itself is missing
/// or unrecognisable (no checkpoint to recover); otherwise the scan never
/// fails — it recovers the valid prefix and counts the rest.
pub fn decode_checkpoint(bytes: &[u8]) -> Option<DecodedCheckpoint> {
    if bytes.len() < CKPT_HEADER_BYTES || bytes[..8] != CKPT_MAGIC {
        return None;
    }
    let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    let tick = word(8);
    let n_table = word(16);
    let n_arena = word(24);
    let expected = n_table.saturating_add(n_arena);
    let mut out = DecodedCheckpoint {
        tick,
        ..DecodedCheckpoint::default()
    };
    let mut at = CKPT_HEADER_BYTES;
    for i in 0..expected {
        // A short or wrong length field means the tail is torn (or the
        // frame boundary itself is corrupt): alignment is gone, stop.
        if bytes.len() < at + FRAME_OVERHEAD {
            break;
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        if len != REC_BYTES || bytes.len() < at + FRAME_OVERHEAD + len {
            break;
        }
        let sum = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
        let payload = &bytes[at + FRAME_OVERHEAD..at + FRAME_OVERHEAD + len];
        at += FRAME_OVERHEAD + len;
        if fnv(payload) != sum {
            // The frame is intact (alignment held) but the payload is
            // rotten: quarantine this one record and keep scanning.
            continue;
        }
        if i < n_table {
            out.table.extend_from_slice(payload);
        } else {
            out.arena.extend_from_slice(payload);
        }
    }
    out.quarantined = expected - out.recovered();
    Some(out)
}

/// Encodes one journal record.
pub fn encode_wal_record(op: u8, key: u64) -> [u8; WAL_REC_BYTES] {
    let mut rec = [0u8; WAL_REC_BYTES];
    rec[0] = op;
    rec[1..9].copy_from_slice(&key.to_le_bytes());
    let sum = fnv(&rec[..9]);
    rec[9..17].copy_from_slice(&sum.to_le_bytes());
    rec
}

/// What a journal scan recovered.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct DecodedWal {
    /// `(op, key)` pairs in append order.
    pub ops: Vec<(u8, u64)>,
    /// Records dropped to checksum failures or unknown ops (the fixed
    /// record width keeps the scan aligned past them).
    pub quarantined: u64,
}

/// Scans a journal. Missing/foreign magic yields an empty scan; a short
/// trailing record (torn append) is dropped silently — it is the tail.
pub fn decode_wal(bytes: &[u8]) -> DecodedWal {
    let mut out = DecodedWal::default();
    if bytes.len() < 8 || bytes[..8] != WAL_MAGIC {
        return out;
    }
    for rec in bytes[8..].chunks(WAL_REC_BYTES) {
        if rec.len() < WAL_REC_BYTES {
            break;
        }
        let sum = u64::from_le_bytes(rec[9..17].try_into().unwrap());
        let op = rec[0];
        if fnv(&rec[..9]) != sum || (op != WAL_ADMIT && op != WAL_EVICT) {
            out.quarantined += 1;
            continue;
        }
        let key = u64::from_le_bytes(rec[1..9].try_into().unwrap());
        out.ops.push((op, key));
    }
    out
}

/// One shard's durable-state writer: buffers journal appends, flushes them
/// at batch boundaries, and rotates checkpoint segments atomically.
pub struct ShardPersist {
    dir: PathBuf,
    shard: usize,
    wal: Option<File>,
    pending: Vec<u8>,
}

impl ShardPersist {
    /// Opens (creating the directory if needed) shard `shard`'s writer.
    pub fn create(dir: &Path, shard: usize) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            shard,
            wal: None,
            pending: Vec::new(),
        })
    }

    /// Journals the admission of a new stream.
    pub fn log_admit(&mut self, key: u64) {
        self.pending
            .extend_from_slice(&encode_wal_record(WAL_ADMIT, key));
    }

    /// Journals an arena eviction (the stream is forgotten).
    pub fn log_evict(&mut self, key: u64) {
        self.pending
            .extend_from_slice(&encode_wal_record(WAL_EVICT, key));
    }

    /// Whether journal bytes are waiting to be flushed.
    pub fn wal_dirty(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Appends the buffered journal records to the journal file.
    pub fn flush_wal(&mut self) -> std::io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        if self.wal.is_none() {
            let path = wal_path(&self.dir, self.shard);
            let fresh = !path.exists();
            let mut f = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)?;
            if fresh || f.metadata()?.len() == 0 {
                f.write_all(&WAL_MAGIC)?;
            }
            self.wal = Some(f);
        }
        let f = self.wal.as_mut().expect("opened above");
        f.write_all(&self.pending)?;
        self.pending.clear();
        Ok(())
    }

    /// Writes a checkpoint segment atomically (tmp + fsync + rename), then
    /// resets the journal — a crash between the rename and the reset only
    /// leaves ops the idempotent replay already tolerates.
    pub fn write_checkpoint(
        &mut self,
        tick: u64,
        table: &[u8],
        arena: &[u8],
    ) -> std::io::Result<()> {
        let bytes = encode_checkpoint(tick, table, arena);
        let final_path = ckpt_path(&self.dir, self.shard);
        let tmp_path = final_path.with_extension("ckpt.tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&bytes)?;
            tmp.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        self.pending.clear();
        self.wal = None;
        let mut wal = File::create(wal_path(&self.dir, self.shard))?;
        wal.write_all(&WAL_MAGIC)?;
        Ok(())
    }
}

/// Everything recovery found for one shard. Missing files are simply an
/// empty state — a first boot with `--recover` is a clean boot.
#[derive(Debug, Default)]
pub struct RecoveredShard {
    /// Shard tick of the recovered checkpoint.
    pub tick: u64,
    /// Recovered compact-table records (flat, [`REC_BYTES`] each).
    pub table: Vec<u8>,
    /// Recovered arena records (flat, [`REC_BYTES`] each).
    pub arena: Vec<u8>,
    /// Journal ops appended after the checkpoint, in order.
    pub wal_ops: Vec<(u8, u64)>,
    /// Checkpoint records recovered.
    pub recovered: u64,
    /// Records lost to corruption or torn tails (checkpoint + journal).
    pub quarantined: u64,
}

/// Recovers shard `shard`'s durable state from `dir`. Infallible: any
/// read or scan failure degrades to less recovered state, never an error.
pub fn recover_shard(dir: &Path, shard: usize) -> RecoveredShard {
    let mut out = RecoveredShard::default();
    if let Ok(bytes) = fs::read(ckpt_path(dir, shard)) {
        if let Some(ckpt) = decode_checkpoint(&bytes) {
            out.tick = ckpt.tick;
            out.recovered = ckpt.recovered();
            out.quarantined = ckpt.quarantined;
            out.table = ckpt.table;
            out.arena = ckpt.arena;
        }
    }
    if let Ok(bytes) = fs::read(wal_path(dir, shard)) {
        let wal = decode_wal(&bytes);
        out.quarantined += wal.quarantined;
        out.wal_ops = wal.ops;
    }
    out
}

/// A checkpoint segment's vital signs, read without mutating anything —
/// what the restart drill polls to know a quiesced daemon has captured
/// every stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Shard index parsed from the file name.
    pub shard: usize,
    /// Shard tick the segment was captured at.
    pub tick: u64,
    /// Records recovered by a scan (table + arena).
    pub records: u64,
    /// Records the scan had to drop.
    pub quarantined: u64,
}

/// Scans every `shard-*.ckpt` under `dir`, sorted by shard index.
pub fn inspect(dir: &Path) -> Vec<CheckpointInfo> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(shard) = name
            .strip_prefix("shard-")
            .and_then(|s| s.strip_suffix(".ckpt"))
            .and_then(|s| s.parse::<usize>().ok())
        else {
            continue;
        };
        let Ok(bytes) = fs::read(entry.path()) else {
            continue;
        };
        if let Some(ckpt) = decode_checkpoint(&bytes) {
            out.push(CheckpointInfo {
                shard,
                tick: ckpt.tick,
                records: ckpt.recovered(),
                quarantined: ckpt.quarantined,
            });
        }
    }
    out.sort_by_key(|i| i.shard);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::collection;
    use proptest::prelude::*;

    fn rec(fill: u8) -> Vec<u8> {
        (0..REC_BYTES).map(|i| fill.wrapping_add(i as u8)).collect()
    }

    fn slab(fills: &[u8]) -> Vec<u8> {
        fills.iter().flat_map(|&f| rec(f)).collect()
    }

    #[test]
    fn checkpoint_roundtrips() {
        let table = slab(&[1, 2, 3]);
        let arena = slab(&[9, 10]);
        let bytes = encode_checkpoint(77, &table, &arena);
        let ckpt = decode_checkpoint(&bytes).expect("valid header");
        assert_eq!(ckpt.tick, 77);
        assert_eq!(ckpt.table, table);
        assert_eq!(ckpt.arena, arena);
        assert_eq!(ckpt.quarantined, 0);
        assert_eq!(ckpt.recovered(), 5);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let bytes = encode_checkpoint(0, &[], &[]);
        let ckpt = decode_checkpoint(&bytes).expect("valid header");
        assert_eq!(ckpt.recovered(), 0);
        assert_eq!(ckpt.quarantined, 0);
    }

    #[test]
    fn foreign_bytes_are_not_a_checkpoint() {
        assert_eq!(decode_checkpoint(b""), None);
        assert_eq!(decode_checkpoint(b"not a checkpoint at all........."), None);
        assert_eq!(decode_checkpoint(&CKPT_MAGIC), None, "header cut short");
    }

    #[test]
    fn payload_bit_flip_quarantines_exactly_one_record() {
        let table = slab(&[1, 2, 3, 4]);
        let mut bytes = encode_checkpoint(5, &table, &[]);
        // Flip a byte inside the second record's payload.
        let at = CKPT_HEADER_BYTES + (FRAME_OVERHEAD + REC_BYTES) + FRAME_OVERHEAD + 10;
        bytes[at] ^= 0x40;
        let ckpt = decode_checkpoint(&bytes).expect("valid header");
        assert_eq!(ckpt.quarantined, 1);
        assert_eq!(ckpt.recovered(), 3);
        // Records 1, 3 and 4 survive; the scan stayed aligned past the rot.
        assert_eq!(ckpt.table[..REC_BYTES], rec(1)[..]);
        assert_eq!(ckpt.table[REC_BYTES..2 * REC_BYTES], rec(3)[..]);
    }

    #[test]
    fn length_field_corruption_tears_the_tail() {
        let table = slab(&[1, 2, 3]);
        let mut bytes = encode_checkpoint(5, &table, &[]);
        let at = CKPT_HEADER_BYTES + (FRAME_OVERHEAD + REC_BYTES); // record 2's len
        bytes[at] ^= 0xFF;
        let ckpt = decode_checkpoint(&bytes).expect("valid header");
        assert_eq!(ckpt.recovered(), 1, "alignment lost at record 2");
        assert_eq!(ckpt.quarantined, 2);
    }

    proptest! {
        /// Truncating a checkpoint at *every* byte offset never panics and
        /// always recovers the intact record prefix.
        #[test]
        fn truncation_at_every_offset_recovers_the_prefix(
            table in collection::vec(any::<u8>(), 0..4).prop_map(|f| slab(&f)),
            arena in collection::vec(any::<u8>(), 0..3).prop_map(|f| slab(&f)),
            tick in any::<u64>(),
        ) {
            let bytes = encode_checkpoint(tick, &table, &arena);
            let total = ((table.len() + arena.len()) / REC_BYTES) as u64;
            for cut in 0..=bytes.len() {
                let got = decode_checkpoint(&bytes[..cut]);
                if cut < CKPT_HEADER_BYTES {
                    prop_assert_eq!(got, None);
                    continue;
                }
                let ckpt = got.expect("intact header");
                prop_assert_eq!(ckpt.tick, tick);
                // Every fully-present record is recovered.
                let whole = (cut - CKPT_HEADER_BYTES) / (FRAME_OVERHEAD + REC_BYTES);
                prop_assert_eq!(ckpt.recovered(), (whole as u64).min(total));
                prop_assert_eq!(ckpt.recovered() + ckpt.quarantined, total);
                // And it is a byte-exact prefix of the original slabs.
                prop_assert_eq!(&table[..ckpt.table.len()], &ckpt.table[..]);
                prop_assert_eq!(&arena[..ckpt.arena.len()], &ckpt.arena[..]);
            }
        }
    }

    #[test]
    fn wal_roundtrips_and_survives_torn_and_duplicate_records() {
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&encode_wal_record(WAL_ADMIT, 11));
        bytes.extend_from_slice(&encode_wal_record(WAL_EVICT, 22));
        bytes.extend_from_slice(&encode_wal_record(WAL_ADMIT, 33));
        let wal = decode_wal(&bytes);
        assert_eq!(
            wal.ops,
            vec![(WAL_ADMIT, 11), (WAL_EVICT, 22), (WAL_ADMIT, 33)]
        );
        assert_eq!(wal.quarantined, 0);

        // A duplicated record decodes twice (replay is idempotent upstream).
        let mut dup = bytes.clone();
        dup.extend_from_slice(&encode_wal_record(WAL_ADMIT, 33));
        assert_eq!(decode_wal(&dup).ops.len(), 4);

        // A torn trailing append is dropped silently.
        for cut in 8 + WAL_REC_BYTES..8 + 2 * WAL_REC_BYTES {
            let wal = decode_wal(&bytes[..cut]);
            assert_eq!(wal.ops, vec![(WAL_ADMIT, 11)], "cut at {cut}");
        }

        // A mid-file bit flip quarantines one record; the fixed width
        // keeps the rest aligned.
        let mut flipped = bytes.clone();
        flipped[8 + WAL_REC_BYTES + 3] ^= 0x08;
        let wal = decode_wal(&flipped);
        assert_eq!(wal.ops, vec![(WAL_ADMIT, 11), (WAL_ADMIT, 33)]);
        assert_eq!(wal.quarantined, 1);

        // Foreign magic: nothing to replay.
        assert_eq!(decode_wal(b"????????rest").ops.len(), 0);
    }

    #[test]
    fn writer_rotates_atomically_and_resets_the_journal() {
        let dir = std::env::temp_dir().join("lahd_persist_writer_test");
        let _ = fs::remove_dir_all(&dir);
        let mut p = ShardPersist::create(&dir, 0).unwrap();
        p.log_admit(7);
        p.log_admit(8);
        p.flush_wal().unwrap();
        p.log_evict(7);
        p.flush_wal().unwrap();
        let wal = decode_wal(&fs::read(wal_path(&dir, 0)).unwrap());
        assert_eq!(
            wal.ops,
            vec![(WAL_ADMIT, 7), (WAL_ADMIT, 8), (WAL_EVICT, 7)]
        );

        p.write_checkpoint(42, &slab(&[1, 2]), &slab(&[5])).unwrap();
        assert!(!ckpt_path(&dir, 0).with_extension("ckpt.tmp").exists());
        let rec = recover_shard(&dir, 0);
        assert_eq!(rec.tick, 42);
        assert_eq!(rec.recovered, 3);
        assert_eq!(rec.quarantined, 0);
        assert!(rec.wal_ops.is_empty(), "journal reset with the rotation");

        // Post-checkpoint ops land in the fresh journal.
        p.log_admit(9);
        p.flush_wal().unwrap();
        assert_eq!(recover_shard(&dir, 0).wal_ops, vec![(WAL_ADMIT, 9)]);

        let info = inspect(&dir);
        assert_eq!(info.len(), 1);
        assert_eq!(info[0].shard, 0);
        assert_eq!(info[0].tick, 42);
        assert_eq!(info[0].records, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_of_a_missing_directory_is_a_clean_boot() {
        let rec = recover_shard(Path::new("/nonexistent/lahd-state"), 3);
        assert_eq!(rec.recovered, 0);
        assert_eq!(rec.quarantined, 0);
        assert!(rec.wal_ops.is_empty());
        assert!(inspect(Path::new("/nonexistent/lahd-state")).is_empty());
    }
}
