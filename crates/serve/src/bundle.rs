//! A validated, servable artifact bundle.
//!
//! [`ServeBundle`] is everything one daemon generation serves from: the
//! checked pipeline artifacts, both packed inference engines (quantized i8
//! fast tier and exact reference), and the drift baseline the per-stream
//! guards score against. Construction is the *off-path validation* step of
//! hot reload: [`ServeBundle::load`] runs `load_artifacts_checked` plus an
//! end-to-end inference probe, so a corrupt candidate is rejected before
//! any shard sees it and the previous bundle keeps serving.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;

use lahd_core::{
    load_artifacts_checked, resolve_baseline, PipelineArtifacts, PipelineConfig, Scenario,
};
use lahd_fsm::{compile_fsm, CompiledCursor, CompiledFsm, FsmExecutor, VecPolicy};
use lahd_guard::BaselineProfile;
use lahd_rl::{InferEngine, InferScratch, Precision};
use lahd_tensor::Matrix;

/// One loadable generation of serving state.
pub struct ServeBundle {
    /// The pipeline configuration the artifacts were loaded under.
    pub cfg: PipelineConfig,
    /// The checked artifacts (agent, QBNs, FSM, traces).
    pub artifacts: PipelineArtifacts,
    /// Packed i8 fast-tier engine.
    pub quant: InferEngine,
    /// Packed exact reference engine.
    pub exact: InferEngine,
    /// Drift baseline for the per-stream guards (the stamped profile, or
    /// one recomputed from a clean rollout for pre-guard artifacts).
    pub baseline: BaselineProfile,
    /// Per-dimension Tukey fences precomputed from `baseline` — the
    /// compact tier's out-of-band test is an interval check per served
    /// observation, so the fences are derived once per bundle generation.
    pub band: Vec<(f32, f32)>,
    /// The FSM lowered once at load time and shared by every stream's
    /// rung-0 tier (and the shard's batched FSM path). `None` when the
    /// machine is outside the compiled envelope — streams then run the
    /// reference interpreter, scalar only.
    ///
    /// Like the net fast tier, the serving FSM tier encodes observations
    /// through the *quantized-fast* obs QBN (i8 packed weights, polynomial
    /// activations) rather than the exact one: the encoder's scalar libm
    /// `tanh` chain dominates the compiled step otherwise (~2× latency),
    /// and the same measured-accuracy contract applies — borderline latent
    /// digits may flip, which the symbol table resolves like any other
    /// near-centroid code, and the exact net stays the shadow reference.
    pub compiled: Option<Arc<CompiledFsm>>,
}

/// The obs QBN as the serving FSM tier runs it: switched onto the
/// quantized fast-inference path (see [`ServeBundle::compiled`]).
fn obs_qbn_fast(artifacts: &PipelineArtifacts) -> lahd_fsm::Qbn {
    let mut qbn = artifacts.obs_qbn.clone();
    qbn.set_precision(Precision::QuantizedFast);
    qbn
}

impl ServeBundle {
    /// Loads and validates the bundle in `dir`. Any failure — I/O, corrupt
    /// or mismatched artifact files, non-finite probe outputs, a panic in
    /// the probe — comes back as `Err`, leaving the caller free to keep
    /// serving its current bundle.
    pub fn load(cfg: &PipelineConfig, dir: &Path) -> Result<Self, String> {
        let artifacts = load_artifacts_checked(cfg, dir)
            .map_err(|e| format!("artifact validation failed: {e}"))?;
        Self::from_artifacts(cfg.clone(), artifacts)
    }

    /// Wraps already-loaded artifacts (in-process daemons and tests),
    /// running the same inference probe as [`ServeBundle::load`].
    pub fn from_artifacts(
        cfg: PipelineConfig,
        artifacts: PipelineArtifacts,
    ) -> Result<Self, String> {
        let quant = InferEngine::with_precision(&artifacts.agent, Precision::QuantizedFast);
        let exact = InferEngine::with_precision(&artifacts.agent, Precision::Exact);
        let baseline = resolve_baseline(&cfg, &artifacts, &artifacts.real_traces);
        let band = baseline.tukey_band(3.0);
        let compiled = compile_fsm(
            &artifacts.fsm,
            &obs_qbn_fast(&artifacts),
            cfg.metric,
            cfg.nn_matching,
        )
        .ok()
        .map(Arc::new);
        let bundle = Self {
            cfg,
            artifacts,
            quant,
            exact,
            baseline,
            band,
            compiled,
        };
        bundle.probe()?;
        Ok(bundle)
    }

    /// A fresh rung-0 FSM executor sharing this bundle's compiled machine
    /// (no per-stream recompilation). The embedded QBN matches the
    /// compiled machine's quantized-fast encode, so the interpreter
    /// fallback stays action-identical to the compiled path.
    pub fn fsm_executor(&self) -> FsmExecutor {
        FsmExecutor::with_compiled(
            self.artifacts.fsm.clone(),
            obs_qbn_fast(&self.artifacts),
            self.cfg.metric,
            self.cfg.nn_matching,
            self.compiled.clone(),
        )
    }

    /// The scenario the bundle serves.
    pub fn scenario(&self) -> &'static dyn Scenario {
        self.cfg.scenario.get()
    }

    /// Observation width a [`crate::Request::Decide`] must carry.
    pub fn obs_dim(&self) -> usize {
        self.artifacts.agent.obs_dim()
    }

    /// Number of valid action indices.
    pub fn num_actions(&self) -> usize {
        self.artifacts.agent.num_actions()
    }

    /// Drives a handful of decisions through every tier — batched and
    /// scalar net inference, the FSM executor, the scenario baseline — and
    /// rejects the bundle on any panic, non-finite output, or out-of-range
    /// action. This is the last line of the hot-reload validation: corrupt
    /// parameter *values* that still parse must not reach the serving path.
    fn probe(&self) -> Result<(), String> {
        catch_unwind(AssertUnwindSafe(|| self.probe_inner()))
            .map_err(|_| "bundle probe panicked".to_string())?
    }

    fn probe_inner(&self) -> Result<(), String> {
        let dim = self.obs_dim();
        if self.baseline.dim() != dim {
            return Err(format!(
                "baseline dimensionality {} does not match observations {dim}",
                self.baseline.dim()
            ));
        }
        let rows = 3usize;
        let mut obs = Matrix::zeros(rows, dim);
        for r in 0..rows {
            for (d, v) in obs.row_mut(r).iter_mut().enumerate() {
                // Spread the probe rows across the baseline's typical band.
                let p = &self.baseline.dims[d];
                *v = match r {
                    0 => p.p50,
                    1 => p.p25,
                    _ => p.p75,
                } as f32;
            }
        }
        let agent = &self.artifacts.agent;
        let hidden = Matrix::zeros(rows, agent.hidden_dim());
        let mut scratch = InferScratch::default();
        for (name, engine) in [("quant", &self.quant), ("exact", &self.exact)] {
            engine.infer_batch_into(agent, &obs, &hidden, &mut scratch);
            for r in 0..rows {
                let logits = scratch.logits.row(r);
                if !logits.iter().all(|v| v.is_finite()) {
                    return Err(format!("{name} engine produced non-finite logits"));
                }
                if lahd_tensor::argmax(logits) >= self.num_actions() {
                    return Err(format!("{name} engine action out of range"));
                }
            }
            // Scalar path too: the shard's guard fallbacks use it.
            let mut h1 = Matrix::zeros(1, agent.hidden_dim());
            h1.row_mut(0).copy_from_slice(scratch.hidden.row(0));
            engine.infer_into(agent, obs.row(0), &h1, &mut scratch);
            if !scratch.logits.row(0).iter().all(|v| v.is_finite()) {
                return Err(format!("{name} engine scalar path non-finite"));
            }
        }
        let mut fsm = self.fsm_executor();
        let mut last_resort = self
            .scenario()
            .baselines(&self.cfg.sim)
            .into_iter()
            .next()
            .ok_or("scenario registers no baseline policy")?;
        for policy in [&mut fsm as &mut dyn VecPolicy, last_resort.as_mut()] {
            policy.reset();
            for r in 0..rows {
                let action = policy.act_vec(obs.row(r));
                if action >= self.num_actions() {
                    return Err(format!("{} action {action} out of range", policy.name()));
                }
            }
        }
        // The shard's batched FSM path, when the machine lowered: same
        // probe rows, one cursor per row.
        if let Some(compiled) = &self.compiled {
            let mut scratch = compiled.make_batch_scratch();
            let mut cursors: Vec<CompiledCursor> =
                (0..rows).map(|_| CompiledCursor::new(compiled)).collect();
            let states: Vec<u16> = cursors.iter().map(CompiledCursor::state).collect();
            let mut outcomes = Vec::new();
            compiled.step_batch(
                (0..rows).map(|r| obs.row(r)),
                &states,
                &mut scratch,
                &mut outcomes,
            );
            for (cursor, &outcome) in cursors.iter_mut().zip(&outcomes) {
                let action = cursor.apply(outcome);
                if action >= self.num_actions() {
                    return Err(format!("compiled FSM batch action {action} out of range"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahd_core::Pipeline;
    use std::sync::OnceLock;

    fn tiny() -> &'static (PipelineConfig, std::path::PathBuf) {
        static ARTIFACTS: OnceLock<(PipelineConfig, std::path::PathBuf)> = OnceLock::new();
        ARTIFACTS.get_or_init(|| {
            let cfg = PipelineConfig::tiny();
            let artifacts = Pipeline::new(cfg.clone()).run();
            let dir = std::env::temp_dir().join("lahd_serve_bundle_test");
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            lahd_core::save_artifacts(&artifacts, &dir).unwrap();
            (cfg, dir)
        })
    }

    #[test]
    fn sound_artifacts_load_and_probe() {
        let (cfg, dir) = tiny();
        let bundle = ServeBundle::load(cfg, dir).expect("tiny artifacts must serve");
        assert!(bundle.obs_dim() > 0);
        assert!(bundle.num_actions() > 1);
        assert_eq!(bundle.baseline.dim(), bundle.obs_dim());
        // Pipeline-extracted machines sit well inside the compiled
        // envelope, so the load must produce the shared compiled tier and
        // executors must pick it up.
        let compiled = bundle.compiled.as_ref().expect("tiny FSM must lower");
        let exec = bundle.fsm_executor();
        assert!(
            exec.compiled()
                .is_some_and(|c| Arc::ptr_eq(c, bundle.compiled.as_ref().unwrap())),
            "executors must share the bundle's compiled machine"
        );
        assert_eq!(compiled.input_dim(), bundle.obs_dim());
    }

    #[test]
    fn bit_flipped_candidate_is_rejected_not_panicked() {
        let (cfg, dir) = tiny();
        let corrupt = std::env::temp_dir().join("lahd_serve_bundle_corrupt");
        let _ = std::fs::remove_dir_all(&corrupt);
        std::fs::create_dir_all(&corrupt).unwrap();
        for entry in std::fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), corrupt.join(entry.file_name())).unwrap();
        }
        let target = corrupt.join("agent.params");
        let mut bytes = std::fs::read(&target).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x10;
        std::fs::write(&target, bytes).unwrap();
        assert!(
            ServeBundle::load(cfg, &corrupt).is_err(),
            "corrupt bundle must be rejected"
        );
    }

    #[test]
    fn missing_directory_is_an_error() {
        let (cfg, _) = tiny();
        let missing = std::env::temp_dir().join("lahd_serve_bundle_missing");
        let _ = std::fs::remove_dir_all(&missing);
        assert!(ServeBundle::load(cfg, &missing).is_err());
    }
}
