//! A validated, servable artifact bundle.
//!
//! [`ServeBundle`] is everything one daemon generation serves from: the
//! checked pipeline artifacts, both packed inference engines (quantized i8
//! fast tier and exact reference), and the drift baseline the per-stream
//! guards score against. Construction is the *off-path validation* step of
//! hot reload: [`ServeBundle::load`] runs `load_artifacts_checked` plus an
//! end-to-end inference probe, so a corrupt candidate is rejected before
//! any shard sees it and the previous bundle keeps serving.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use lahd_core::{
    load_artifacts_checked, resolve_baseline, PipelineArtifacts, PipelineConfig, Scenario,
};
use lahd_fsm::VecPolicy;
use lahd_guard::BaselineProfile;
use lahd_rl::{InferEngine, InferScratch, Precision};
use lahd_tensor::Matrix;

/// One loadable generation of serving state.
pub struct ServeBundle {
    /// The pipeline configuration the artifacts were loaded under.
    pub cfg: PipelineConfig,
    /// The checked artifacts (agent, QBNs, FSM, traces).
    pub artifacts: PipelineArtifacts,
    /// Packed i8 fast-tier engine.
    pub quant: InferEngine,
    /// Packed exact reference engine.
    pub exact: InferEngine,
    /// Drift baseline for the per-stream guards (the stamped profile, or
    /// one recomputed from a clean rollout for pre-guard artifacts).
    pub baseline: BaselineProfile,
}

impl ServeBundle {
    /// Loads and validates the bundle in `dir`. Any failure — I/O, corrupt
    /// or mismatched artifact files, non-finite probe outputs, a panic in
    /// the probe — comes back as `Err`, leaving the caller free to keep
    /// serving its current bundle.
    pub fn load(cfg: &PipelineConfig, dir: &Path) -> Result<Self, String> {
        let artifacts = load_artifacts_checked(cfg, dir)
            .map_err(|e| format!("artifact validation failed: {e}"))?;
        Self::from_artifacts(cfg.clone(), artifacts)
    }

    /// Wraps already-loaded artifacts (in-process daemons and tests),
    /// running the same inference probe as [`ServeBundle::load`].
    pub fn from_artifacts(
        cfg: PipelineConfig,
        artifacts: PipelineArtifacts,
    ) -> Result<Self, String> {
        let quant = InferEngine::with_precision(&artifacts.agent, Precision::QuantizedFast);
        let exact = InferEngine::with_precision(&artifacts.agent, Precision::Exact);
        let baseline = resolve_baseline(&cfg, &artifacts, &artifacts.real_traces);
        let bundle = Self {
            cfg,
            artifacts,
            quant,
            exact,
            baseline,
        };
        bundle.probe()?;
        Ok(bundle)
    }

    /// The scenario the bundle serves.
    pub fn scenario(&self) -> &'static dyn Scenario {
        self.cfg.scenario.get()
    }

    /// Observation width a [`crate::Request::Decide`] must carry.
    pub fn obs_dim(&self) -> usize {
        self.artifacts.agent.obs_dim()
    }

    /// Number of valid action indices.
    pub fn num_actions(&self) -> usize {
        self.artifacts.agent.num_actions()
    }

    /// Drives a handful of decisions through every tier — batched and
    /// scalar net inference, the FSM executor, the scenario baseline — and
    /// rejects the bundle on any panic, non-finite output, or out-of-range
    /// action. This is the last line of the hot-reload validation: corrupt
    /// parameter *values* that still parse must not reach the serving path.
    fn probe(&self) -> Result<(), String> {
        catch_unwind(AssertUnwindSafe(|| self.probe_inner()))
            .map_err(|_| "bundle probe panicked".to_string())?
    }

    fn probe_inner(&self) -> Result<(), String> {
        let dim = self.obs_dim();
        if self.baseline.dim() != dim {
            return Err(format!(
                "baseline dimensionality {} does not match observations {dim}",
                self.baseline.dim()
            ));
        }
        let rows = 3usize;
        let mut obs = Matrix::zeros(rows, dim);
        for r in 0..rows {
            for (d, v) in obs.row_mut(r).iter_mut().enumerate() {
                // Spread the probe rows across the baseline's typical band.
                let p = &self.baseline.dims[d];
                *v = match r {
                    0 => p.p50,
                    1 => p.p25,
                    _ => p.p75,
                } as f32;
            }
        }
        let agent = &self.artifacts.agent;
        let hidden = Matrix::zeros(rows, agent.hidden_dim());
        let mut scratch = InferScratch::default();
        for (name, engine) in [("quant", &self.quant), ("exact", &self.exact)] {
            engine.infer_batch_into(agent, &obs, &hidden, &mut scratch);
            for r in 0..rows {
                let logits = scratch.logits.row(r);
                if !logits.iter().all(|v| v.is_finite()) {
                    return Err(format!("{name} engine produced non-finite logits"));
                }
                if lahd_tensor::argmax(logits) >= self.num_actions() {
                    return Err(format!("{name} engine action out of range"));
                }
            }
            // Scalar path too: the shard's guard fallbacks use it.
            let mut h1 = Matrix::zeros(1, agent.hidden_dim());
            h1.row_mut(0).copy_from_slice(scratch.hidden.row(0));
            engine.infer_into(agent, obs.row(0), &h1, &mut scratch);
            if !scratch.logits.row(0).iter().all(|v| v.is_finite()) {
                return Err(format!("{name} engine scalar path non-finite"));
            }
        }
        let mut fsm = self
            .artifacts
            .fsm_executor(self.cfg.metric, self.cfg.nn_matching);
        let mut last_resort = self
            .scenario()
            .baselines(&self.cfg.sim)
            .into_iter()
            .next()
            .ok_or("scenario registers no baseline policy")?;
        for policy in [&mut fsm as &mut dyn VecPolicy, last_resort.as_mut()] {
            policy.reset();
            for r in 0..rows {
                let action = policy.act_vec(obs.row(r));
                if action >= self.num_actions() {
                    return Err(format!("{} action {action} out of range", policy.name()));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahd_core::Pipeline;
    use std::sync::OnceLock;

    fn tiny() -> &'static (PipelineConfig, std::path::PathBuf) {
        static ARTIFACTS: OnceLock<(PipelineConfig, std::path::PathBuf)> = OnceLock::new();
        ARTIFACTS.get_or_init(|| {
            let cfg = PipelineConfig::tiny();
            let artifacts = Pipeline::new(cfg.clone()).run();
            let dir = std::env::temp_dir().join("lahd_serve_bundle_test");
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            lahd_core::save_artifacts(&artifacts, &dir).unwrap();
            (cfg, dir)
        })
    }

    #[test]
    fn sound_artifacts_load_and_probe() {
        let (cfg, dir) = tiny();
        let bundle = ServeBundle::load(cfg, dir).expect("tiny artifacts must serve");
        assert!(bundle.obs_dim() > 0);
        assert!(bundle.num_actions() > 1);
        assert_eq!(bundle.baseline.dim(), bundle.obs_dim());
    }

    #[test]
    fn bit_flipped_candidate_is_rejected_not_panicked() {
        let (cfg, dir) = tiny();
        let corrupt = std::env::temp_dir().join("lahd_serve_bundle_corrupt");
        let _ = std::fs::remove_dir_all(&corrupt);
        std::fs::create_dir_all(&corrupt).unwrap();
        for entry in std::fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), corrupt.join(entry.file_name())).unwrap();
        }
        let target = corrupt.join("agent.params");
        let mut bytes = std::fs::read(&target).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x10;
        std::fs::write(&target, bytes).unwrap();
        assert!(
            ServeBundle::load(cfg, &corrupt).is_err(),
            "corrupt bundle must be rejected"
        );
    }

    #[test]
    fn missing_directory_is_an_error() {
        let (cfg, _) = tiny();
        let missing = std::env::temp_dir().join("lahd_serve_bundle_missing");
        let _ = std::fs::remove_dir_all(&missing);
        assert!(ServeBundle::load(cfg, &missing).is_err());
    }
}
