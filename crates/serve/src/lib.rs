//! Fault-tolerant decision serving for extracted LAHD policies.
//!
//! The paper's deliverable — an FSM distilled from a learned storage
//! heuristic, with the teacher net as fallback — is a *production*
//! artifact; this crate is the always-on service around it. A daemon
//! ([`serve`]/[`serve_dir`]) loads a validated artifact bundle
//! ([`ServeBundle`]) and answers decision requests for many concurrent
//! streams over a length-prefixed Unix-socket protocol ([`protocol`]),
//! sharded across per-core worker threads — no async runtime, just
//! bounded queues and `std` threads.
//!
//! Each stream runs behind its own guarded tier ladder (extracted FSM →
//! quantized-i8 net → exact net → scenario baseline, `lahd-guard`'s
//! hysteresis machine deciding who serves); streams on a net tier are
//! answered through one batched inference call per shard drain. The
//! robustness layer covers every failure tier:
//!
//! - **panic isolation** — a shard worker that panics is caught, counted,
//!   and restarted with exponential backoff; its queue (and therefore its
//!   in-flight requests) survives, its streams are re-admitted with reset
//!   state, and the daemon never exits.
//! - **admission control** — bounded per-shard queues with retry/backoff;
//!   persistent overload *sheds* requests to the scenario-baseline
//!   fallback (labelled, counted) instead of erroring.
//! - **deadline budgets** — per-request deadlines; work that expires in
//!   the queue is answered from the fallback tier at dequeue.
//! - **crash-safe hot reload** — a reload request validates the candidate
//!   bundle off-path (checked parsing + an inference probe) and only then
//!   publishes it; shards swap at batch boundaries; a corrupt candidate is
//!   rejected with the old bundle still serving.
//! - **durable state** — with a state directory configured, each shard
//!   checkpoints its compact streams + hibernation arena into checksummed
//!   segment files (atomic tmp+rename) and journals admits/evictions in
//!   between ([`persist`]); `--recover` resumes surviving streams
//!   bit-identically after a crash, truncating torn tails and
//!   quarantining corrupt records instead of panicking.
//!
//! [`run_bench`] is the deterministic load + chaos harness behind
//! `lahd serve-bench` (kill a shard, burst 10× load, offer a corrupt
//! reload), whose chaos summary is byte-reproducible under a fixed seed;
//! [`run_restart_drill`] is the supervisor-style crash-restart drill
//! behind `lahd serve-drill` (SIGKILL mid-load → restart with recovery →
//! action-checksum lockstep against an uninterrupted daemon).

mod alloc;
mod bench;
mod bundle;
mod client;
mod compact;
mod daemon;
mod metrics;
pub mod persist;
mod protocol;
mod shard;
mod stream_table;
mod telemetry;

pub use alloc::{live_bytes, rss_bytes, CountingAllocator};
pub use bench::{
    load_profile, prepare_corrupt_candidate, run_bench, run_restart_drill, run_streams_sweep,
    BenchConfig, BenchSummary, ChaosOutcome, ChaosPlan, DrillConfig, DrillOutcome, PerfOutcome,
    StreamsSweep, SweepPoint,
};
pub use bundle::ServeBundle;
pub use client::{ClientError, RetryPolicy, ServeClient};
pub use compact::{CompactStream, HibernationArena, REC_BYTES};
pub use daemon::{serve, serve_dir, shard_of, ServeConfig, ServeHandle, SharedState};
pub use metrics::{render_stats_json, LatencyHistogram, MetricsSnapshot, ServeMetrics};
pub use protocol::{
    read_frame, write_frame, ProtoError, Request, Response, Source, MAGIC, MAX_FRAME,
};
pub use shard::{ShardMsg, TIER_BASELINE, TIER_EXACT, TIER_FSM, TIER_QUANT};
pub use stream_table::{StreamRef, StreamSet, StreamTable};
pub use telemetry::{
    run_aggregator, telemetry_channel, ShardTelemetry, TelemetryHub, TelemetryMsg,
    TelemetrySnapshot,
};
