//! A counting global allocator + RSS probe for bytes/stream measurement.
//!
//! The serve-bench streams sweep reports *measured* memory per stream, not
//! a `size_of` estimate: the CLI installs [`CountingAllocator`] as the
//! global allocator, the sweep reads [`live_bytes`] before and after
//! admitting N streams, and divides. [`rss_bytes`] (VmRSS from
//! `/proc/self/status`) rides along as the operating-system view —
//! coarser (page granularity, allocator slack, no shrink on free) and
//! therefore reported informationally rather than gated.
//!
//! The allocator is a thin forwarding wrapper over `System` with one
//! relaxed atomic add/sub per call — cheap enough to leave on for every
//! CLI run, and exact: live bytes are allocation-sized, so transient
//! harness allocations cancel once freed.

// The one place the serve stack needs `unsafe`: implementing GlobalAlloc
// requires it (pure forwarding to `System`, no pointer arithmetic of our
// own). Same precedent as the rl crate's counting-allocator test.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static LIVE: AtomicU64 = AtomicU64::new(0);

/// Forwarding allocator that tracks net live bytes (see module docs).
/// Install with `#[global_allocator]`; [`live_bytes`] reads 0 when it is
/// not installed, which callers must treat as "measurement unavailable".
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            LIVE.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            LIVE.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            LIVE.fetch_add(new_size as u64, Ordering::Relaxed);
            LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }
}

/// Net live heap bytes since process start (0 when [`CountingAllocator`]
/// is not the global allocator).
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// Resident set size in bytes from `/proc/self/status` (Linux); 0 when
/// unavailable. Page-granular and high-water-biased — informational.
pub fn rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_probe_reads_proc_when_present() {
        // On Linux this is positive; elsewhere the probe reports 0 and the
        // sweep labels the column unavailable.
        let rss = rss_bytes();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 0, "VmRSS must parse on Linux");
        }
    }

    #[test]
    fn live_bytes_reads_zero_without_installation() {
        // Unit tests run under the default allocator; the counter must
        // simply read 0 rather than lie.
        let _v: Vec<u8> = Vec::with_capacity(1 << 16);
        assert_eq!(live_bytes(), 0);
    }
}
