//! Daemon-wide counters and the latency histogram.
//!
//! Counters are relaxed atomics: they are operator telemetry, not
//! synchronisation, and the serving hot path must not contend on them.
//! The histogram is log-bucketed (powers of two in nanoseconds), which
//! bounds quantile error at 2× — plenty for p50/p99/p999 rows whose
//! regressions of interest are order-of-magnitude.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of ladder tiers accounted separately (FSM, quant net, exact net,
/// scenario baseline — the ladder `lahd_core::build_ladder` produces).
pub const TIERS: usize = 4;

/// Daemon-wide counters; every field is monotonically increasing.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Decisions answered on the normal guarded path.
    pub served: AtomicU64,
    /// Decisions shed by admission control to the daemon fallback.
    pub shed: AtomicU64,
    /// Decisions whose deadline expired in the queue.
    pub deadline_misses: AtomicU64,
    /// Shard worker panics caught.
    pub panics: AtomicU64,
    /// Shard worker restarts completed.
    pub restarts: AtomicU64,
    /// Hot reloads accepted (bundle swapped).
    pub reloads_ok: AtomicU64,
    /// Hot reloads rejected (old bundle kept serving).
    pub reloads_rejected: AtomicU64,
    /// Enqueue attempts that found a shard queue full (before retries).
    pub queue_full: AtomicU64,
    /// Guarded decisions served per ladder tier.
    pub tier_decisions: [AtomicU64; TIERS],
}

impl ServeMetrics {
    /// Increment helper (relaxed).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one guarded decision served by `tier`.
    pub fn record_served(&self, tier: usize) {
        Self::bump(&self.served);
        if let Some(c) = self.tier_decisions.get(tier) {
            Self::bump(c);
        }
    }

    /// Renders the snapshot as one JSON object (stable key order).
    pub fn to_json(&self, generation: u64, shards: usize) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let tiers: Vec<String> = self
            .tier_decisions
            .iter()
            .map(|c| g(c).to_string())
            .collect();
        format!(
            concat!(
                "{{\"generation\":{},\"shards\":{},\"served\":{},\"shed\":{},",
                "\"deadline_misses\":{},\"panics\":{},\"restarts\":{},",
                "\"reloads_ok\":{},\"reloads_rejected\":{},\"queue_full\":{},",
                "\"tier_decisions\":[{}]}}"
            ),
            generation,
            shards,
            g(&self.served),
            g(&self.shed),
            g(&self.deadline_misses),
            g(&self.panics),
            g(&self.restarts),
            g(&self.reloads_ok),
            g(&self.reloads_rejected),
            g(&self.queue_full),
            tiers.join(",")
        )
    }
}

/// A tiny snapshot of the counters, parsed back out of the JSON the daemon
/// serves — what the bench harness and the verify gate read.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Bundle generation at snapshot time.
    pub generation: u64,
    /// Decisions served on the guarded path.
    pub served: u64,
    /// Decisions shed by admission control.
    pub shed: u64,
    /// Deadline misses answered from the fallback tier.
    pub deadline_misses: u64,
    /// Panics caught.
    pub panics: u64,
    /// Shard restarts completed.
    pub restarts: u64,
    /// Reloads accepted.
    pub reloads_ok: u64,
    /// Reloads rejected.
    pub reloads_rejected: u64,
}

impl MetricsSnapshot {
    /// Parses the fields this struct carries out of [`ServeMetrics::to_json`]
    /// output. Unknown keys are ignored; missing keys default to zero.
    pub fn from_json(json: &str) -> Self {
        let field = |name: &str| -> u64 {
            let needle = format!("\"{name}\":");
            json.find(&needle)
                .map(|at| {
                    json[at + needle.len()..]
                        .chars()
                        .take_while(|c| c.is_ascii_digit())
                        .collect::<String>()
                        .parse()
                        .unwrap_or(0)
                })
                .unwrap_or(0)
        };
        Self {
            generation: field("generation"),
            served: field("served"),
            shed: field("shed"),
            deadline_misses: field("deadline_misses"),
            panics: field("panics"),
            restarts: field("restarts"),
            reloads_ok: field("reloads_ok"),
            reloads_rejected: field("reloads_rejected"),
        }
    }
}

/// Sub-buckets per octave: two significant mantissa bits, so adjacent
/// bucket bounds differ by ≤25% — fine enough that one-bucket jitter in a
/// reported quantile stays well inside the perf gate's threshold (an
/// octave-wide bucket would make the smallest possible move a 100% delta).
const SUBS: usize = 4;

/// Octaves covered (1 ns .. ~1100 s).
const OCTAVES: usize = 40;

/// Number of log-linear latency buckets.
const BUCKETS: usize = OCTAVES * SUBS;

/// Log-linear (HDR-style) latency histogram (single-threaded; the bench
/// harness owns one per run).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency sample in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket(ns)] += 1;
        self.total += 1;
    }

    /// Bucket index: octave (floor log2) plus the next two mantissa bits.
    fn bucket(ns: u64) -> usize {
        let ns = ns.max(1);
        let e = 63 - ns.leading_zeros() as usize;
        if e < 2 {
            // 1, 2 and 3 ns land in exact buckets below the scheme.
            return ns as usize - 1;
        }
        let sub = ((ns >> (e - 2)) & 0b11) as usize;
        (e * SUBS + sub).min(BUCKETS - 1)
    }

    /// Inclusive upper bound (ns) of bucket `i`.
    fn upper_bound(i: usize) -> u64 {
        if i < 2 * SUBS {
            // The exact low buckets (indices for e < 2 use `ns - 1`).
            return i as u64 + 1;
        }
        let e = i / SUBS;
        let sub = (i % SUBS) as u64;
        // Bucket spans [(4+sub), (5+sub)) · 2^(e-2).
        (sub + 5) << (e - 2)
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The upper bound (ns) of the bucket containing quantile `q ∈ [0, 1]`;
    /// 0 when empty. Bounded relative error ≤25% (one sub-bucket).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::upper_bound(i);
            }
        }
        Self::upper_bound(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_json_roundtrips_through_snapshot() {
        let m = ServeMetrics::default();
        m.record_served(0);
        m.record_served(2);
        ServeMetrics::bump(&m.shed);
        ServeMetrics::bump(&m.panics);
        ServeMetrics::bump(&m.restarts);
        let snap = MetricsSnapshot::from_json(&m.to_json(3, 2));
        assert_eq!(snap.generation, 3);
        assert_eq!(snap.served, 2);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.panics, 1);
        assert_eq!(snap.restarts, 1);
        assert_eq!(snap.reloads_rejected, 0);
    }

    #[test]
    fn histogram_quantiles_bracket_their_samples() {
        let mut h = LatencyHistogram::default();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.len(), 5);
        // Rank ceil(0.5·5) = 3 → the 400 ns sample, bounded within +25%.
        let p50 = h.quantile(0.5);
        assert!((400..=500).contains(&p50), "p50 bucket {p50}");
        let p99 = h.quantile(0.99);
        assert!(
            (100_000..=125_000).contains(&p99),
            "p99 bucket {p99} must cover the outlier tightly"
        );
        assert!(h.quantile(0.0) >= 100, "floor bucket");
    }

    #[test]
    fn histogram_buckets_have_bounded_relative_error() {
        // Every sample's reported bucket bound is within +25% of the true
        // value (and never below it) — the contract the perf gate's
        // regression threshold leans on.
        // Stay below the clamp octave (2^40 ns ≈ 1100 s), beyond which
        // everything saturates into the last bucket.
        for ns in (0..39)
            .map(|i| 1u64 << i)
            .flat_map(|b| [b, b + b / 3, b + b / 2])
        {
            let mut h = LatencyHistogram::default();
            h.record(ns);
            let q = h.quantile(1.0);
            assert!(q >= ns, "bound {q} below sample {ns}");
            assert!(q <= ns + ns / 4 + 1, "bound {q} over +25% of sample {ns}");
        }
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
    }
}
