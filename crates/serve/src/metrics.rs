//! Daemon-wide counters and the latency histogram.
//!
//! Since the telemetry sidecar landed (see [`crate::telemetry`]), the
//! atomics here cover only *off-path* events — connection-thread sheds,
//! panics, restarts, reloads, queue-full observations. Everything the
//! decision path itself counts (served, per-tier decisions, deadline
//! misses, latency) accumulates shard-locally and arrives through the
//! sidecar; [`render_stats_json`] merges both halves into the one stats
//! document clients read. The histogram is log-bucketed with four
//! sub-buckets per octave, bounding quantile error at ≤25%.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::telemetry::TelemetrySnapshot;

/// Number of ladder tiers accounted separately (FSM, quant net, exact net,
/// scenario baseline — the ladder `lahd_core::build_ladder` produces).
pub const TIERS: usize = 4;

/// Off-path daemon counters; every field is monotonically increasing.
/// Decision-path counters live in [`crate::telemetry::ShardTelemetry`].
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Decisions shed by *admission control* on connection threads (queue
    /// persistently full). Shard-side sheds (stream-table capacity) are
    /// counted in shard telemetry; the stats document sums both.
    pub shed: AtomicU64,
    /// Shard worker panics caught.
    pub panics: AtomicU64,
    /// Shard worker restarts completed.
    pub restarts: AtomicU64,
    /// Hot reloads accepted (bundle swapped).
    pub reloads_ok: AtomicU64,
    /// Hot reloads rejected (old bundle kept serving).
    pub reloads_rejected: AtomicU64,
    /// Enqueue attempts that found a shard queue full (before retries).
    pub queue_full: AtomicU64,
    /// Checkpoint segments written (periodic + drain + post-swap).
    pub checkpoints: AtomicU64,
    /// Durable-state I/O failures (checkpoint/journal writes, state-dir
    /// creation). The daemon keeps serving; persistence degrades.
    pub persist_errors: AtomicU64,
    /// Streams resumed from checkpoint + journal at recovery.
    pub recovered_streams: AtomicU64,
    /// Corrupt records quarantined during recovery (checkpoint + journal).
    pub quarantined_records: AtomicU64,
    /// Journal operations replayed during recovery.
    pub journal_ops: AtomicU64,
}

impl ServeMetrics {
    /// Increment helper (relaxed).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Renders the merged stats document (stable key order). The legacy keys
/// keep their meaning — `served`, `deadline_misses`, `tier_decisions` now
/// come from the sidecar, `shed` sums the connection- and shard-side
/// counts — and the tiered-stream-state keys (`streams`, `lifecycle`,
/// `latency`) extend the document; [`MetricsSnapshot::from_json`] ignores
/// what it doesn't know, so old readers keep working.
pub fn render_stats_json(
    generation: u64,
    shards: usize,
    metrics: &ServeMetrics,
    snap: &TelemetrySnapshot,
) -> String {
    let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let t = &snap.totals;
    let tiers: Vec<String> = t.tier_decisions.iter().map(u64::to_string).collect();
    format!(
        concat!(
            "{{\"generation\":{},\"shards\":{},\"served\":{},\"shed\":{},",
            "\"deadline_misses\":{},\"panics\":{},\"restarts\":{},",
            "\"reloads_ok\":{},\"reloads_rejected\":{},\"queue_full\":{},",
            "\"tier_decisions\":[{}],",
            "\"streams\":{{\"compact\":{},\"resident\":{},\"hibernated\":{}}},",
            "\"lifecycle\":{{\"materializations\":{},\"releases\":{},\"audits\":{},",
            "\"hibernates\":{},\"wakes\":{},\"evictions\":{}}},",
            "\"arena_bytes\":{},",
            "\"persist\":{{\"checkpoints\":{},\"persist_errors\":{},",
            "\"recovered_streams\":{},\"quarantined_records\":{},",
            "\"journal_ops\":{}}},",
            "\"latency\":{{\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{}}}}}"
        ),
        generation,
        shards,
        t.served,
        g(&metrics.shed) + t.shed,
        t.deadline_misses,
        g(&metrics.panics),
        g(&metrics.restarts),
        g(&metrics.reloads_ok),
        g(&metrics.reloads_rejected),
        g(&metrics.queue_full),
        tiers.join(","),
        t.compact,
        t.resident,
        t.hibernated,
        t.materializations,
        t.releases,
        t.audits,
        t.hibernates,
        t.wakes,
        t.evictions,
        t.arena_bytes,
        g(&metrics.checkpoints),
        g(&metrics.persist_errors),
        g(&metrics.recovered_streams),
        g(&metrics.quarantined_records),
        g(&metrics.journal_ops),
        t.latency.quantile(0.5),
        t.latency.quantile(0.99),
        t.latency.quantile(0.999),
    )
}

/// A tiny snapshot of the counters, parsed back out of the JSON the daemon
/// serves — what the bench harness and the verify gate read.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Bundle generation at snapshot time.
    pub generation: u64,
    /// Decisions served on the guarded path.
    pub served: u64,
    /// Decisions shed by admission control (connection + shard side).
    pub shed: u64,
    /// Deadline misses answered from the fallback tier.
    pub deadline_misses: u64,
    /// Panics caught.
    pub panics: u64,
    /// Shard restarts completed.
    pub restarts: u64,
    /// Reloads accepted.
    pub reloads_ok: u64,
    /// Reloads rejected.
    pub reloads_rejected: u64,
    /// Gauge: compact streams resident in stream tables.
    pub streams_compact: u64,
    /// Gauge: streams holding a materialized full ladder.
    pub streams_resident: u64,
    /// Gauge: streams parked in hibernation arenas.
    pub streams_hibernated: u64,
    /// Streams parked into arenas, cumulative.
    pub hibernates: u64,
    /// Streams woken from arenas, cumulative.
    pub wakes: u64,
    /// Compact streams promoted to a full ladder, cumulative.
    pub materializations: u64,
    /// Full ladders released back to compact records, cumulative.
    pub releases: u64,
    /// Checkpoint segments written.
    pub checkpoints: u64,
    /// Durable-state I/O failures.
    pub persist_errors: u64,
    /// Streams resumed from durable state at recovery.
    pub recovered_streams: u64,
    /// Corrupt records quarantined during recovery.
    pub quarantined_records: u64,
    /// Journal operations replayed during recovery.
    pub journal_ops: u64,
}

impl MetricsSnapshot {
    /// Parses the fields this struct carries out of [`render_stats_json`]
    /// output. Unknown keys are ignored; missing keys default to zero.
    pub fn from_json(json: &str) -> Self {
        let field = |name: &str| -> u64 {
            let needle = format!("\"{name}\":");
            json.find(&needle)
                .map(|at| {
                    json[at + needle.len()..]
                        .chars()
                        .take_while(|c| c.is_ascii_digit())
                        .collect::<String>()
                        .parse()
                        .unwrap_or(0)
                })
                .unwrap_or(0)
        };
        Self {
            generation: field("generation"),
            served: field("served"),
            shed: field("shed"),
            deadline_misses: field("deadline_misses"),
            panics: field("panics"),
            restarts: field("restarts"),
            reloads_ok: field("reloads_ok"),
            reloads_rejected: field("reloads_rejected"),
            streams_compact: field("compact"),
            streams_resident: field("resident"),
            streams_hibernated: field("hibernated"),
            hibernates: field("hibernates"),
            wakes: field("wakes"),
            materializations: field("materializations"),
            releases: field("releases"),
            checkpoints: field("checkpoints"),
            persist_errors: field("persist_errors"),
            recovered_streams: field("recovered_streams"),
            quarantined_records: field("quarantined_records"),
            journal_ops: field("journal_ops"),
        }
    }

    /// Live streams across tiers (the denominator serve-bench's
    /// bytes/stream measurement divides by).
    pub fn streams_total(&self) -> u64 {
        self.streams_compact + self.streams_resident + self.streams_hibernated
    }
}

/// Sub-buckets per octave: two significant mantissa bits, so adjacent
/// bucket bounds differ by ≤25% — fine enough that one-bucket jitter in a
/// reported quantile stays well inside the perf gate's threshold (an
/// octave-wide bucket would make the smallest possible move a 100% delta).
const SUBS: usize = 4;

/// Octaves covered (1 ns .. ~1100 s).
const OCTAVES: usize = 40;

/// Number of log-linear latency buckets.
const BUCKETS: usize = OCTAVES * SUBS;

/// Log-linear (HDR-style) latency histogram (single-threaded; shards and
/// the bench harness own one each, merged off-path by the aggregator).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency sample in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket(ns)] += 1;
        self.total += 1;
    }

    /// Adds every sample of `other` into `self` (bucket-wise; exact).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Bucket index: octave (floor log2) plus the next two mantissa bits.
    fn bucket(ns: u64) -> usize {
        let ns = ns.max(1);
        let e = 63 - ns.leading_zeros() as usize;
        if e < 2 {
            // 1, 2 and 3 ns land in exact buckets below the scheme.
            return ns as usize - 1;
        }
        let sub = ((ns >> (e - 2)) & 0b11) as usize;
        (e * SUBS + sub).min(BUCKETS - 1)
    }

    /// Inclusive upper bound (ns) of bucket `i`.
    fn upper_bound(i: usize) -> u64 {
        if i < 2 * SUBS {
            // The exact low buckets (indices for e < 2 use `ns - 1`).
            return i as u64 + 1;
        }
        let e = i / SUBS;
        let sub = (i % SUBS) as u64;
        // Bucket spans [(4+sub), (5+sub)) · 2^(e-2).
        (sub + 5) << (e - 2)
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The upper bound (ns) of the bucket containing quantile `q ∈ [0, 1]`;
    /// 0 when empty. Bounded relative error ≤25% (one sub-bucket).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::upper_bound(i);
            }
        }
        Self::upper_bound(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::ShardTelemetry;

    #[test]
    fn metrics_json_roundtrips_through_snapshot() {
        let m = ServeMetrics::default();
        ServeMetrics::bump(&m.shed);
        ServeMetrics::bump(&m.panics);
        ServeMetrics::bump(&m.restarts);
        ServeMetrics::bump(&m.checkpoints);
        ServeMetrics::bump(&m.checkpoints);
        ServeMetrics::bump(&m.recovered_streams);
        ServeMetrics::bump(&m.journal_ops);
        let mut t = ShardTelemetry::default();
        t.record_served(0, 500);
        t.record_served(2, 900);
        t.shed = 2;
        t.compact = 4;
        t.resident = 1;
        t.hibernated = 6;
        t.hibernates = 7;
        t.wakes = 5;
        t.materializations = 3;
        t.releases = 2;
        let snap = TelemetrySnapshot { totals: t };
        let json = render_stats_json(3, 2, &m, &snap);
        let parsed = MetricsSnapshot::from_json(&json);
        assert_eq!(parsed.generation, 3);
        assert_eq!(parsed.served, 2);
        assert_eq!(parsed.shed, 3, "conn-side + shard-side sheds sum");
        assert_eq!(parsed.panics, 1);
        assert_eq!(parsed.restarts, 1);
        assert_eq!(parsed.reloads_rejected, 0);
        assert_eq!(parsed.streams_compact, 4);
        assert_eq!(parsed.streams_resident, 1);
        assert_eq!(parsed.streams_hibernated, 6);
        assert_eq!(parsed.streams_total(), 11);
        assert_eq!(parsed.hibernates, 7);
        assert_eq!(parsed.wakes, 5);
        assert_eq!(parsed.materializations, 3);
        assert_eq!(parsed.releases, 2);
        assert_eq!(parsed.checkpoints, 2);
        assert_eq!(parsed.persist_errors, 0);
        assert_eq!(parsed.recovered_streams, 1);
        assert_eq!(parsed.quarantined_records, 0);
        assert_eq!(parsed.journal_ops, 1);
        assert!(json.contains("\"persist\":{\"checkpoints\":2,"));
        assert!(json.contains("\"tier_decisions\":[1,0,1,0]"));
        assert!(json.contains("\"latency\":{\"p50_ns\":"));
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut whole = LatencyHistogram::default();
        for (i, ns) in [100u64, 200, 400, 800, 100_000].iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.record(*ns);
            whole.record(*ns);
        }
        a.merge(&b);
        assert_eq!(a.len(), whole.len());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn histogram_quantiles_bracket_their_samples() {
        let mut h = LatencyHistogram::default();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.len(), 5);
        // Rank ceil(0.5·5) = 3 → the 400 ns sample, bounded within +25%.
        let p50 = h.quantile(0.5);
        assert!((400..=500).contains(&p50), "p50 bucket {p50}");
        let p99 = h.quantile(0.99);
        assert!(
            (100_000..=125_000).contains(&p99),
            "p99 bucket {p99} must cover the outlier tightly"
        );
        assert!(h.quantile(0.0) >= 100, "floor bucket");
    }

    #[test]
    fn histogram_buckets_have_bounded_relative_error() {
        // Every sample's reported bucket bound is within +25% of the true
        // value (and never below it) — the contract the perf gate's
        // regression threshold leans on.
        // Stay below the clamp octave (2^40 ns ≈ 1100 s), beyond which
        // everything saturates into the last bucket.
        for ns in (0..39)
            .map(|i| 1u64 << i)
            .flat_map(|b| [b, b + b / 3, b + b / 2])
        {
            let mut h = LatencyHistogram::default();
            h.record(ns);
            let q = h.quantile(1.0);
            assert!(q >= ns, "bound {q} below sample {ns}");
            assert!(q <= ns + ns / 4 + 1, "bound {q} over +25% of sample {ns}");
        }
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
    }
}
