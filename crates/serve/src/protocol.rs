//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! Every message is a little-endian `u32` payload length followed by the
//! payload; the first payload byte is a tag, the rest tag-specific fields
//! (all integers little-endian, observations as raw `f32` bits). The format
//! is deliberately tiny — no self-description, no versioning beyond the
//! [`MAGIC`] byte — because both ends live in this workspace. Decoding is
//! total: any malformed frame becomes a typed [`ProtoError`], never a
//! panic, so a misbehaving client cannot take a shard down.

use std::io::{Read, Write};

/// First payload byte of every frame; rejects plaintext noise early.
pub const MAGIC: u8 = 0xA7;

/// Upper bound on a frame payload; anything larger is a protocol error
/// (the daemon must not let one client balloon its memory).
pub const MAX_FRAME: usize = 1 << 20;

/// Where a decision's answer came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// The stream's guarded ladder served it on the normal path.
    Guarded = 0,
    /// Admission control shed it to the daemon-level fallback policy.
    Shed = 1,
    /// Its deadline expired in the queue; answered from the shard fallback.
    Deadline = 2,
}

impl Source {
    /// Decodes the wire byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Source::Guarded),
            1 => Some(Source::Shed),
            2 => Some(Source::Deadline),
            _ => None,
        }
    }

    /// Stable label for JSON summaries.
    pub fn name(self) -> &'static str {
        match self {
            Source::Guarded => "guarded",
            Source::Shed => "shed",
            Source::Deadline => "deadline",
        }
    }
}

/// A client → daemon message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Ask for the action for one observation of one stream. `deadline_us`
    /// is the budget from admission (0 = none); expired work is answered
    /// from the fallback tier.
    Decide {
        /// Caller-chosen correlation id echoed in the response.
        req_id: u64,
        /// Stream identity; hashed to a shard.
        stream: u64,
        /// Deadline budget in microseconds from enqueue (0 = unbounded).
        deadline_us: u64,
        /// The observation vector.
        obs: Vec<f32>,
    },
    /// Ask for the metrics snapshot as JSON.
    Stats,
    /// Validate the artifact bundle in `dir` off-path and, if it is sound,
    /// atomically swap it in; on any validation error the old bundle keeps
    /// serving.
    Reload {
        /// Artifact directory of the candidate bundle.
        dir: String,
    },
    /// Stop the daemon cleanly.
    Shutdown,
    /// Chaos injection (only honoured when the daemon allows chaos): panic
    /// the given shard's worker thread.
    Crash {
        /// Target shard index.
        shard: u32,
    },
    /// Chaos injection: make the given shard's worker sleep, letting its
    /// queue fill so admission control is exercised deterministically.
    Hold {
        /// Target shard index.
        shard: u32,
        /// Sleep duration in milliseconds.
        ms: u32,
    },
    /// Liveness probe: answered [`Response::Ok`] inline on the connection
    /// thread, without touching any shard queue — so a health check
    /// succeeds even under full admission-control backpressure.
    Ping,
}

/// A daemon → client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The answer to a [`Request::Decide`].
    Decision {
        /// Echo of the request's correlation id.
        req_id: u64,
        /// Chosen action index.
        action: u16,
        /// Ladder tier that produced the action.
        tier: u8,
        /// Which path answered (see [`Source`]).
        source: u8,
    },
    /// Metrics snapshot.
    StatsJson(String),
    /// Reload succeeded; the new bundle generation.
    ReloadOk {
        /// Monotonic bundle generation after the swap.
        generation: u64,
    },
    /// The request failed; the old state is unchanged.
    Err(String),
    /// Acknowledgement for control messages with no payload.
    Ok,
}

/// A decode or framing failure.
#[derive(Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// Frame length prefix exceeds [`MAX_FRAME`] or is zero.
    BadLength(usize),
    /// Payload did not start with [`MAGIC`] or had an unknown tag.
    BadTag(u8),
    /// Payload ended before its fields did.
    Truncated,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadLength(n) => write!(f, "bad frame length {n}"),
            ProtoError::BadTag(t) => write!(f, "bad magic/tag byte {t:#04x}"),
            ProtoError::Truncated => write!(f, "frame payload truncated"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let n = u32::from_le_bytes(len) as usize;
    if n == 0 || n > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtoError::BadLength(n).to_string(),
        ));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::Truncated)
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Truncated)
        }
    }
}

fn push_string(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let n = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(n as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..n]);
}

impl Request {
    /// Serialises into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![MAGIC];
        match self {
            Request::Decide {
                req_id,
                stream,
                deadline_us,
                obs,
            } => {
                out.push(1);
                out.extend_from_slice(&req_id.to_le_bytes());
                out.extend_from_slice(&stream.to_le_bytes());
                out.extend_from_slice(&deadline_us.to_le_bytes());
                out.extend_from_slice(&(obs.len() as u16).to_le_bytes());
                for v in obs {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Request::Stats => out.push(2),
            Request::Reload { dir } => {
                out.push(3);
                push_string(&mut out, dir);
            }
            Request::Shutdown => out.push(4),
            Request::Crash { shard } => {
                out.push(5);
                out.extend_from_slice(&shard.to_le_bytes());
            }
            Request::Hold { shard, ms } => {
                out.push(6);
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&ms.to_le_bytes());
            }
            Request::Ping => out.push(7),
        }
        out
    }

    /// Parses a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor { buf, pos: 0 };
        let magic = c.u8()?;
        if magic != MAGIC {
            return Err(ProtoError::BadTag(magic));
        }
        let tag = c.u8()?;
        let req = match tag {
            1 => {
                let req_id = c.u64()?;
                let stream = c.u64()?;
                let deadline_us = c.u64()?;
                let n = c.u16()? as usize;
                let mut obs = Vec::with_capacity(n);
                for _ in 0..n {
                    obs.push(f32::from_le_bytes(c.take(4)?.try_into().unwrap()));
                }
                Request::Decide {
                    req_id,
                    stream,
                    deadline_us,
                    obs,
                }
            }
            2 => Request::Stats,
            3 => Request::Reload { dir: c.string()? },
            4 => Request::Shutdown,
            5 => Request::Crash { shard: c.u32()? },
            6 => Request::Hold {
                shard: c.u32()?,
                ms: c.u32()?,
            },
            7 => Request::Ping,
            t => return Err(ProtoError::BadTag(t)),
        };
        c.done()?;
        Ok(req)
    }
}

impl Response {
    /// Serialises into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![MAGIC];
        match self {
            Response::Decision {
                req_id,
                action,
                tier,
                source,
            } => {
                out.push(1);
                out.extend_from_slice(&req_id.to_le_bytes());
                out.extend_from_slice(&action.to_le_bytes());
                out.push(*tier);
                out.push(*source);
            }
            Response::StatsJson(s) => {
                out.push(2);
                push_string(&mut out, s);
            }
            Response::ReloadOk { generation } => {
                out.push(3);
                out.extend_from_slice(&generation.to_le_bytes());
            }
            Response::Err(s) => {
                out.push(4);
                push_string(&mut out, s);
            }
            Response::Ok => out.push(5),
        }
        out
    }

    /// Parses a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor { buf, pos: 0 };
        let magic = c.u8()?;
        if magic != MAGIC {
            return Err(ProtoError::BadTag(magic));
        }
        let tag = c.u8()?;
        let resp = match tag {
            1 => Response::Decision {
                req_id: c.u64()?,
                action: c.u16()?,
                tier: c.u8()?,
                source: c.u8()?,
            },
            2 => Response::StatsJson(c.string()?),
            3 => Response::ReloadOk {
                generation: c.u64()?,
            },
            4 => Response::Err(c.string()?),
            5 => Response::Ok,
            t => return Err(ProtoError::BadTag(t)),
        };
        c.done()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<Request> {
        vec![
            Request::Decide {
                req_id: 42,
                stream: 7,
                deadline_us: 1500,
                obs: vec![0.25, -1.0, 3.5],
            },
            Request::Decide {
                req_id: 0,
                stream: u64::MAX,
                deadline_us: 0,
                obs: vec![],
            },
            Request::Stats,
            Request::Reload {
                dir: "/tmp/artifacts".to_string(),
            },
            Request::Shutdown,
            Request::Crash { shard: 3 },
            Request::Hold { shard: 1, ms: 25 },
            Request::Ping,
        ]
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Decision {
                req_id: 42,
                action: 6,
                tier: 2,
                source: Source::Shed as u8,
            },
            Response::StatsJson("{\"served\":1}".to_string()),
            Response::ReloadOk { generation: 9 },
            Response::Err("no such shard".to_string()),
            Response::Ok,
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for req in requests() {
            let decoded = Request::decode(&req.encode()).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in responses() {
            let decoded = Response::decode(&resp.encode()).unwrap();
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn frames_roundtrip_over_a_pipe() {
        let mut buf = Vec::new();
        for req in requests() {
            write_frame(&mut buf, &req.encode()).unwrap();
        }
        let mut r = buf.as_slice();
        for req in requests() {
            let frame = read_frame(&mut r).unwrap().expect("frame present");
            assert_eq!(Request::decode(&frame).unwrap(), req);
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_and_corrupt_payloads_are_typed_errors() {
        for req in requests() {
            let enc = req.encode();
            for cut in 0..enc.len() {
                // Every prefix must fail cleanly, never panic.
                let _ = Request::decode(&enc[..cut]);
            }
            let mut noisy = enc.clone();
            noisy[0] ^= 0xFF;
            assert!(matches!(
                Request::decode(&noisy),
                Err(ProtoError::BadTag(_))
            ));
        }
        for resp in responses() {
            let enc = resp.encode();
            for cut in 0..enc.len() {
                let _ = Response::decode(&enc[..cut]);
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut enc = Request::Stats.encode();
        enc.push(0);
        assert_eq!(Request::decode(&enc), Err(ProtoError::Truncated));
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn source_bytes_roundtrip() {
        for s in [Source::Guarded, Source::Shed, Source::Deadline] {
            assert_eq!(Source::from_u8(s as u8), Some(s));
        }
        assert_eq!(Source::from_u8(9), None);
    }
}
