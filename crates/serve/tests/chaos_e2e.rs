//! End-to-end acceptance tests for the serving daemon.
//!
//! The headline test is the ISSUE's chaos acceptance criterion: under the
//! seeded chaos plan (shard kill + 10× burst + corrupt hot reload) the
//! daemon never exits, sheds to fallback tiers with labelled responses,
//! recovers the killed shard, keeps serving the old artifact after the
//! corrupt reload — and a same-seed re-run against a fresh daemon
//! produces a byte-identical chaos JSON summary.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Duration;

use lahd_core::{save_artifacts, Pipeline, PipelineConfig};
use lahd_serve::{
    prepare_corrupt_candidate, run_bench, serve_dir, BenchConfig, ChaosPlan, MetricsSnapshot,
    Request, Response, ServeClient, ServeConfig, ServeHandle,
};

/// Train the tiny pipeline once per process and stamp its artifacts to
/// disk; every test serves from this directory.
fn artifacts() -> &'static (PipelineConfig, PathBuf) {
    static ARTIFACTS: OnceLock<(PipelineConfig, PathBuf)> = OnceLock::new();
    ARTIFACTS.get_or_init(|| {
        let cfg = PipelineConfig::tiny();
        let produced = Pipeline::new(cfg.clone()).run();
        let dir = std::env::temp_dir().join("lahd_serve_e2e_artifacts");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        save_artifacts(&produced, &dir).unwrap();
        (cfg, dir)
    })
}

fn chaos_serve_cfg() -> ServeConfig {
    ServeConfig {
        shards: 2,
        // Small enough that a held shard's queue genuinely fills during
        // the 10× burst, making shedding deterministic.
        queue_capacity: 16,
        allow_chaos: true,
        ..ServeConfig::default()
    }
}

fn start_daemon(socket: &Path) -> ServeHandle {
    let (cfg, dir) = artifacts();
    serve_dir(cfg, dir, chaos_serve_cfg(), socket).expect("daemon must start")
}

fn shutdown(handle: ServeHandle) {
    let mut client =
        ServeClient::connect_retry(handle.socket_path(), Duration::from_secs(5)).unwrap();
    assert_eq!(client.call(&Request::Shutdown).unwrap(), Response::Ok);
    handle.wait();
}

fn daemon_stats(socket: &Path) -> MetricsSnapshot {
    let mut client = ServeClient::connect_retry(socket, Duration::from_secs(5)).unwrap();
    match client.call(&Request::Stats).unwrap() {
        Response::StatsJson(json) => MetricsSnapshot::from_json(&json),
        other => panic!("unexpected stats response {other:?}"),
    }
}

fn chaos_bench_cfg(corrupt_dir: PathBuf) -> BenchConfig {
    let rounds = 24;
    BenchConfig {
        streams: 8,
        rounds,
        requests: 0, // chaos phase only; perf is covered separately
        seed: 7,
        chaos: Some(ChaosPlan::standard(rounds, corrupt_dir)),
        ..BenchConfig::default()
    }
}

#[test]
fn chaos_plan_is_survived_and_reproducible() {
    let (_, dir) = artifacts();
    let corrupt = std::env::temp_dir().join("lahd_serve_e2e_corrupt");
    prepare_corrupt_candidate(dir, &corrupt).unwrap();
    let bench = chaos_bench_cfg(corrupt);

    let mut jsons = Vec::new();
    for run in 0..2 {
        let socket = std::env::temp_dir().join(format!("lahd_serve_e2e_chaos_{run}.sock"));
        let handle = start_daemon(&socket);
        let summary = run_bench(&socket, dir, &bench).expect("bench must complete");
        let chaos = summary.chaos.expect("chaos phase ran");

        assert_eq!(
            chaos.requests, chaos.responses,
            "shedding degrades, it never drops"
        );
        assert!(chaos.daemon_alive, "daemon answered stats after the plan");
        assert!(chaos.shard_recovered, "killed shard restarted and served");
        assert!(chaos.reload_rejected, "corrupt bundle rejected");
        assert!(
            chaos.generation_unchanged,
            "old artifact still serving after corrupt reload"
        );
        assert!(chaos.shed_observed, "burst produced labelled shed answers");
        assert!(
            chaos.deadline_fallback,
            "expired work answered from fallback"
        );

        let stats = daemon_stats(&socket);
        assert!(stats.panics >= 1, "the injected crash was caught");
        assert!(stats.restarts >= 1, "the worker restarted");
        assert!(stats.reloads_rejected >= 1);
        assert_eq!(stats.reloads_ok, 0);
        assert!(stats.shed >= 1);
        assert!(stats.deadline_misses >= 1);

        jsons.push(chaos.to_json());
        shutdown(handle);
    }
    assert_eq!(
        jsons[0], jsons[1],
        "same-seed chaos runs must produce identical JSON summaries"
    );
}

#[test]
fn healthy_lockstep_runs_are_deterministic_and_fully_guarded() {
    let (_, dir) = artifacts();
    let bench = BenchConfig {
        streams: 6,
        rounds: 16,
        requests: 0,
        seed: 21,
        chaos: None,
        ..BenchConfig::default()
    };
    let mut jsons = Vec::new();
    for run in 0..2 {
        let socket = std::env::temp_dir().join(format!("lahd_serve_e2e_clean_{run}.sock"));
        let handle = start_daemon(&socket);
        let summary = run_bench(&socket, dir, &bench).unwrap();
        let chaos = summary.chaos.unwrap();
        assert_eq!(chaos.requests, 6 * 16);
        assert_eq!(chaos.responses, chaos.requests);
        let stats = daemon_stats(&socket);
        assert_eq!(stats.shed, 0, "no shedding under lockstep load");
        assert_eq!(stats.panics, 0);
        assert_eq!(stats.served, chaos.requests);
        jsons.push(chaos.to_json());
        shutdown(handle);
    }
    assert_eq!(jsons[0], jsons[1]);
}

#[test]
fn open_loop_perf_phase_reports_latency_and_throughput() {
    let (_, dir) = artifacts();
    let socket = std::env::temp_dir().join("lahd_serve_e2e_perf.sock");
    let handle = start_daemon(&socket);
    let bench = BenchConfig {
        streams: 4,
        rounds: 0,
        requests: 400,
        seed: 3,
        chaos: None,
        ..BenchConfig::default()
    };
    let summary = run_bench(&socket, dir, &bench).unwrap();
    assert!(summary.chaos.is_none());
    let perf = summary.perf.as_ref().expect("perf phase ran");
    assert_eq!(perf.requests, 400);
    assert!(perf.decisions_per_sec > 0.0);
    assert!(perf.p50_ns > 0 && perf.p50_ns <= perf.p99_ns);
    assert!(perf.p99_ns <= perf.p999_ns);
    assert_eq!(summary.bench_rows().len(), 4);
    shutdown(handle);
}

#[test]
fn sound_hot_reload_swaps_the_generation_and_keeps_serving() {
    let (_, dir) = artifacts();
    let socket = std::env::temp_dir().join("lahd_serve_e2e_reload.sock");
    let handle = start_daemon(&socket);
    let mut client = ServeClient::connect_retry(&socket, Duration::from_secs(5)).unwrap();

    // A valid candidate (the serving directory itself) must be accepted.
    match client
        .call(&Request::Reload {
            dir: dir.to_string_lossy().into_owned(),
        })
        .unwrap()
    {
        Response::ReloadOk { generation } => assert_eq!(generation, 2),
        other => panic!("sound reload refused: {other:?}"),
    }

    // And decisions keep flowing on the new generation.
    let profile = lahd_serve::load_profile(dir).unwrap();
    let obs: Vec<f32> = profile.dims.iter().map(|d| d.p50 as f32).collect();
    let resp = client
        .call(&Request::Decide {
            req_id: 1,
            stream: 0,
            deadline_us: 0,
            obs,
        })
        .unwrap();
    assert!(
        matches!(resp, Response::Decision { req_id: 1, .. }),
        "got {resp:?}"
    );

    let stats = daemon_stats(&socket);
    assert_eq!(stats.generation, 2);
    assert_eq!(stats.reloads_ok, 1);
    shutdown(handle);
}

#[test]
fn malformed_and_chaos_requests_get_typed_errors() {
    let (_, dir) = artifacts();
    let socket = std::env::temp_dir().join("lahd_serve_e2e_errors.sock");
    // Chaos disabled here: injection must be refused.
    let (cfg, _) = artifacts();
    let handle = serve_dir(cfg, dir, ServeConfig::default(), &socket).unwrap();
    let mut client = ServeClient::connect_retry(&socket, Duration::from_secs(5)).unwrap();

    match client.call(&Request::Crash { shard: 0 }).unwrap() {
        Response::Err(msg) => assert!(msg.contains("disabled"), "{msg}"),
        other => panic!("chaos injection must be refused: {other:?}"),
    }
    // Wrong observation width comes back as an error, not a panic.
    match client
        .call(&Request::Decide {
            req_id: 9,
            stream: 0,
            deadline_us: 0,
            obs: vec![0.0; 2],
        })
        .unwrap()
    {
        Response::Err(msg) => assert!(msg.contains("width"), "{msg}"),
        other => panic!("bad width must error: {other:?}"),
    }
    // Reload from a missing directory is rejected, daemon stays up.
    match client
        .call(&Request::Reload {
            dir: "/nonexistent/lahd".to_string(),
        })
        .unwrap()
    {
        Response::Err(msg) => assert!(msg.contains("rejected"), "{msg}"),
        other => panic!("missing dir must be rejected: {other:?}"),
    }
    let stats = daemon_stats(&socket);
    assert_eq!(stats.generation, 1);
    assert_eq!(stats.reloads_rejected, 1);
    shutdown(handle);
}
