//! Stream-lifecycle acceptance pins for the tiered serving path.
//!
//! The hibernation guarantee is *exact equivalence*: a stream that gets
//! compacted into the arena and rehydrated later must emit byte-identical
//! actions and `FsmRunStats` versus one that stayed resident the whole
//! time. Pinned three ways: a proptest over random observation sequences
//! and split points against the real compiled machine; a daemon-level
//! lockstep comparison between a default daemon and one forced to
//! hibernate every idle stream every tick; and a full chaos plan on the
//! hibernating daemon whose same-seed summary stays byte-identical.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use lahd_core::{save_artifacts, Pipeline, PipelineConfig};
use lahd_fsm::CompiledCursor;
use lahd_serve::{
    load_profile, prepare_corrupt_candidate, run_bench, run_streams_sweep, serve_dir, BenchConfig,
    ChaosPlan, CompactStream, HibernationArena, MetricsSnapshot, Request, Response, ServeBundle,
    ServeClient, ServeConfig, ServeHandle,
};
use proptest::collection;
use proptest::prelude::*;

/// Train the tiny pipeline once per process; every test serves from it.
fn artifacts() -> &'static (PipelineConfig, PathBuf) {
    static ARTIFACTS: OnceLock<(PipelineConfig, PathBuf)> = OnceLock::new();
    ARTIFACTS.get_or_init(|| {
        let cfg = PipelineConfig::tiny();
        let produced = Pipeline::new(cfg.clone()).run();
        let dir = std::env::temp_dir().join("lahd_serve_lifecycle_artifacts");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        save_artifacts(&produced, &dir).unwrap();
        (cfg, dir)
    })
}

fn bundle() -> &'static ServeBundle {
    static BUNDLE: OnceLock<ServeBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        let (cfg, dir) = artifacts();
        ServeBundle::load(cfg, dir).expect("tiny artifacts must load")
    })
}

/// A daemon config that hibernates any stream idle for one tick and
/// sweeps on every tick — every inter-round gap parks streams, so the
/// lockstep load exercises hibernate/wake on nearly every round.
fn hibernating_cfg(allow_chaos: bool) -> ServeConfig {
    ServeConfig {
        shards: 2,
        queue_capacity: 16,
        hibernate_after: 1,
        sweep_every: 1,
        allow_chaos,
        ..ServeConfig::default()
    }
}

fn shutdown(handle: ServeHandle) {
    let mut client =
        ServeClient::connect_retry(handle.socket_path(), Duration::from_secs(5)).unwrap();
    assert_eq!(client.call(&Request::Shutdown).unwrap(), Response::Ok);
    handle.wait();
}

proptest! {
    /// Arena round-trip mid-run is invisible: same actions, same stats.
    #[test]
    fn hibernated_cursor_resumes_bit_identically(
        raw in collection::vec(collection::vec(-2.0f32..2.0, 1..8), 2..40),
        split_frac in 0.0f64..1.0,
    ) {
        let bundle = bundle();
        let compiled = bundle.compiled.as_deref().expect("tiny bundle compiles its FSM");
        let width = bundle.baseline.dims.len();
        // Map the raw vectors onto the bundle's observation width.
        let obs: Vec<Vec<f32>> = raw
            .iter()
            .map(|r| (0..width).map(|i| r[i % r.len()]).collect())
            .collect();
        let split = ((obs.len() as f64) * split_frac) as usize;

        let mut scratch = compiled.make_scratch();
        let mut resident = CompiledCursor::new(compiled);
        let mut resident_actions = Vec::new();
        for o in &obs {
            let outcome = compiled.step(o, resident.state(), &mut scratch);
            resident_actions.push(resident.apply(outcome));
        }

        let mut arena = HibernationArena::new(16);
        let mut roaming = CompiledCursor::new(compiled);
        let mut roaming_actions = Vec::new();
        for (i, o) in obs.iter().enumerate() {
            if i == split {
                // Park through the real serialize/deserialize path.
                arena.hibernate(7, &CompactStream::new(roaming.clone(), 4096));
                roaming = arena.wake(7).expect("just parked").cursor;
            }
            let outcome = compiled.step(o, roaming.state(), &mut scratch);
            roaming_actions.push(roaming.apply(outcome));
        }

        prop_assert_eq!(roaming_actions, resident_actions);
        prop_assert_eq!(roaming.save(), resident.save());
    }
}

#[test]
fn forced_hibernation_is_action_identical_to_default_daemon() {
    let (_, dir) = artifacts();
    let bench = BenchConfig {
        streams: 6,
        rounds: 16,
        requests: 0,
        seed: 33,
        chaos: None,
        ..BenchConfig::default()
    };
    let mut jsons = Vec::new();
    for (name, cfg) in [
        (
            "default",
            ServeConfig {
                shards: 2,
                queue_capacity: 16,
                ..ServeConfig::default()
            },
        ),
        ("hibernating", hibernating_cfg(false)),
    ] {
        let socket = std::env::temp_dir().join(format!("lahd_lifecycle_{name}.sock"));
        let (pcfg, _) = artifacts();
        let handle = serve_dir(pcfg, dir, cfg, &socket).unwrap();
        let summary = run_bench(&socket, dir, &bench).unwrap();
        let chaos = summary.chaos.expect("lockstep phase ran");
        assert_eq!(
            chaos.responses, chaos.requests,
            "{name} answered everything"
        );
        jsons.push(chaos.to_json());
        shutdown(handle);
    }
    // The summary folds an FNV checksum over every served action, so this
    // equality is the hibernate/wake action-equivalence pin.
    assert_eq!(
        jsons[0], jsons[1],
        "hibernating daemon must serve byte-identical decisions"
    );
}

#[test]
fn chaos_plan_on_hibernating_daemon_is_survived_and_reproducible() {
    let (pcfg, dir) = artifacts();
    let corrupt = std::env::temp_dir().join("lahd_lifecycle_corrupt");
    prepare_corrupt_candidate(dir, &corrupt).unwrap();
    let rounds = 24;
    let bench = BenchConfig {
        streams: 8,
        rounds,
        requests: 0,
        seed: 7,
        chaos: Some(ChaosPlan::standard(rounds, corrupt)),
        ..BenchConfig::default()
    };
    let mut jsons = Vec::new();
    for run in 0..2 {
        let socket = std::env::temp_dir().join(format!("lahd_lifecycle_chaos_{run}.sock"));
        let handle = serve_dir(pcfg, dir, hibernating_cfg(true), &socket).unwrap();
        let summary = run_bench(&socket, dir, &bench).unwrap();
        let chaos = summary.chaos.expect("chaos phase ran");
        assert!(chaos.all_good(), "plan survived with hibernation forced");
        jsons.push(chaos.to_json());
        shutdown(handle);
    }
    assert_eq!(
        jsons[0], jsons[1],
        "same-seed chaos JSON stays byte-identical"
    );
}

/// Graceful-restart lockstep: a durable daemon drained mid-load and
/// restarted with `recover` must serve the remaining rounds byte-
/// identically to a daemon that never stopped. This is the library-level
/// half of the recovery pin; the SIGKILL half runs through the real
/// binary in the CLI's `serve-drill` end-to-end test.
#[test]
fn durable_restart_resumes_streams_bit_identically() {
    let (pcfg, dir) = artifacts();
    let profile = load_profile(dir).unwrap();
    let streams = 12u64;
    let (warm_rounds, probe_rounds) = (5u64, 5u64);

    // Deterministic in-band observation for `(stream, round)`.
    let obs = |stream: u64, round: u64| -> Vec<f32> {
        profile
            .dims
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let (lo, hi) = (d.p25 as f32, d.p75 as f32);
                let frac = ((stream * 31 + round * 17 + i as u64 * 7) % 97) as f32 / 96.0;
                if hi > lo {
                    lo + (hi - lo) * frac
                } else {
                    lo
                }
            })
            .collect()
    };
    // One lockstep window; returns every action in (round, stream) order.
    let drive = |client: &mut ServeClient, from: u64, to: u64| -> Vec<u16> {
        let mut actions = Vec::new();
        for round in from..to {
            for stream in 0..streams {
                client
                    .send(&Request::Decide {
                        req_id: (round << 24) | stream,
                        stream,
                        deadline_us: 0,
                        obs: obs(stream, round),
                    })
                    .unwrap();
            }
            let mut got = std::collections::HashMap::new();
            while got.len() < streams as usize {
                match client.recv().unwrap() {
                    Response::Decision { req_id, action, .. } => {
                        got.insert(req_id, action);
                    }
                    other => panic!("unexpected response {other:?}"),
                }
            }
            for stream in 0..streams {
                actions.push(got[&((round << 24) | stream)]);
            }
        }
        actions
    };
    let stats = |client: &mut ServeClient| -> MetricsSnapshot {
        match client.call(&Request::Stats).unwrap() {
            Response::StatsJson(json) => MetricsSnapshot::from_json(&json),
            other => panic!("unexpected stats response {other:?}"),
        }
    };

    // Reference: one daemon, no persistence, never interrupted.
    let expected = {
        let socket = std::env::temp_dir().join("lahd_lifecycle_durable_ref.sock");
        let cfg = ServeConfig {
            shards: 2,
            audit_every: 0,
            ..ServeConfig::default()
        };
        let handle = serve_dir(pcfg, dir, cfg, &socket).unwrap();
        let mut client = ServeClient::connect_retry(&socket, Duration::from_secs(5)).unwrap();
        drive(&mut client, 0, warm_rounds);
        let expected = drive(&mut client, warm_rounds, warm_rounds + probe_rounds);
        drop(client);
        shutdown(handle);
        expected
    };

    // Durable daemon in drain-only mode (checkpoint_every 0): the only
    // checkpoint is the one graceful shutdown writes.
    let state = std::env::temp_dir().join("lahd_lifecycle_durable_state");
    let _ = std::fs::remove_dir_all(&state);
    std::fs::create_dir_all(&state).unwrap();
    let durable = ServeConfig {
        shards: 2,
        audit_every: 0,
        state_dir: Some(state.clone()),
        checkpoint_every: 0,
        ..ServeConfig::default()
    };
    {
        let socket = std::env::temp_dir().join("lahd_lifecycle_durable_warm.sock");
        let handle = serve_dir(pcfg, dir, durable.clone(), &socket).unwrap();
        let mut client = ServeClient::connect_retry(&socket, Duration::from_secs(5)).unwrap();
        drive(&mut client, 0, warm_rounds);
        drop(client);
        shutdown(handle);
    }
    // Restart over the drained state and serve the probe window.
    let socket = std::env::temp_dir().join("lahd_lifecycle_durable_recover.sock");
    let recovering = ServeConfig {
        recover: true,
        ..durable
    };
    let handle = serve_dir(pcfg, dir, recovering, &socket).unwrap();
    let mut client = ServeClient::connect_retry(&socket, Duration::from_secs(5)).unwrap();
    let resumed = drive(&mut client, warm_rounds, warm_rounds + probe_rounds);
    let snap = stats(&mut client);
    assert_eq!(
        snap.recovered_streams, streams,
        "every warm stream must come back from durable state"
    );
    assert_eq!(snap.quarantined_records, 0, "clean shutdown, clean scan");
    drop(client);
    shutdown(handle);
    assert_eq!(
        resumed, expected,
        "recovered streams must serve byte-identical actions"
    );
}

#[test]
fn streams_sweep_admits_everyone_and_reports_rates() {
    let (pcfg, dir) = artifacts();
    let base = ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    };
    let sweep = run_streams_sweep(pcfg, dir, &base, &[48, 96], 11).unwrap();
    assert_eq!(sweep.points.len(), 2);
    for p in &sweep.points {
        assert_eq!(
            p.admitted, p.streams,
            "closed-loop warm admits every stream"
        );
        assert_eq!(p.shed, 0, "windowed load never overruns the queues");
        assert!(p.decisions_per_sec > 0.0);
        assert_eq!(p.hibernated, 0, "the sweep disables the cold tier");
        assert_eq!(p.compact + p.resident, p.admitted);
    }
    let rows = sweep.bench_rows();
    assert!(rows.iter().any(|r| r.contains("serve_streams/48_per_sec")));
    // Unit tests run without the counting allocator installed: the live
    // measurement reads 0 and its rows must be omitted, not emitted as 0.
    assert!(!rows.iter().any(|r| r.contains("live_bytes_per_stream")));
    let json = sweep.to_json();
    assert!(json.contains("\"streams\":48") && json.contains("\"streams\":96"));
}
