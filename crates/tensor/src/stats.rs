//! Small descriptive-statistics helpers shared by evaluation and
//! interpretation code.

/// Index of the maximum element (first on ties).
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of an empty slice is undefined");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population variance (0 for slices with fewer than two elements).
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Linear-interpolation percentile, `p` in `[0, 100]`.
///
/// # Panics
/// Panics on an empty slice or `p` outside `[0, 100]`.
pub fn percentile(xs: &[f32], p: f32) -> f32 {
    assert!(!xs.is_empty(), "percentile of an empty slice is undefined");
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile {p} outside [0, 100]"
    );
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f32;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f32;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn std_dev_matches_known_value() {
        // Population std of {2, 4, 4, 4, 5, 5, 7, 9} is 2.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn percentile_endpoints_are_min_and_max() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 25.0) - 2.5).abs() < 1e-6);
    }
}
