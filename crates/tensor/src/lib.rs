//! Dense linear algebra for the LAHD neural substrate.
//!
//! This crate provides [`Matrix`], a row-major dense `f32` matrix, together
//! with the small set of kernels the rest of the workspace needs: GEMM in the
//! three orientations used by reverse-mode autodiff (`A·B`, `Aᵀ·B`, `A·Bᵀ`),
//! element-wise maps, row-broadcast operations, stable softmax, reductions,
//! and seeded random initialisation.
//!
//! Small vector-matrix shapes run branch-free, eight-wide-unrolled loops
//! written for the autovectoriser; above a size cutoff every orientation
//! routes through the packed, cache-blocked, register-tiled GEMM in
//! [`gemm`] (with an optional AVX2/FMA microkernel behind the `simd` cargo
//! feature). Repeated `1×K` inference products should pack their weights
//! once into [`gemv::PackedGemvWeights`], whose column-panel kernels keep
//! the accumulators in registers for the whole reduction (scalar path
//! bit-identical to `matmul_into`; AVX2/FMA behind the same `simd`
//! feature). Every orientation has an `_into`/`_acc` variant writing into
//! caller-owned scratch, and `transpose` walks 32×32 cache blocks. For
//! decision paths that can trade bit-identity for latency,
//! [`gemv_i8::PackedGemvWeightsI8`] packs the same column panels as
//! quantized `i8` with per-panel dequantization scales (4× less weight
//! streaming, explicit error bound, runtime-dispatched widen kernels). See
//! `PERF.md` at the workspace root for measurements and the blocked-GEMM /
//! packed-GEMV design notes.
//!
//! # Example
//!
//! ```
//! use lahd_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

pub mod gemm;
pub mod gemv;
pub mod gemv_i8;
mod init;
mod matrix;
mod ops;
mod stats;

pub use gemm::PackBuffers;
pub use gemv::PackedGemvWeights;
pub use gemv_i8::PackedGemvWeightsI8;
pub use init::{xavier_normal, xavier_uniform, Initializer};
pub use matrix::Matrix;
pub use ops::{log_softmax_row, softmax_row};
pub use stats::{argmax, mean, percentile, std_dev, variance};

/// Convenience alias used throughout the workspace for seeded randomness.
pub type Rng = rand::rngs::SmallRng;

/// Creates the workspace-standard RNG from a `u64` seed.
///
/// Every stochastic component in LAHD threads an explicit seed so that
/// experiments are reproducible; this is the single place that picks the
/// generator.
pub fn seeded_rng(seed: u64) -> Rng {
    use rand::SeedableRng;
    Rng::seed_from_u64(seed)
}
