//! The dense row-major matrix type used across the workspace.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::gemm::{self, PackBuffers};

/// A dense, row-major `f32` matrix.
///
/// Vectors are represented as `1 × n` matrices throughout the workspace, so a
/// single type covers parameters, activations and gradients.
#[derive(Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of {} elements cannot back a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    /// Panics if the rows are ragged or empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} (expected {cols})",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a `1 × n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies column `c` into `dst` without allocating.
    ///
    /// # Panics
    /// Panics if `c` is out of bounds or `dst.len() != rows`.
    pub fn copy_col_into(&self, c: usize, dst: &mut [f32]) {
        assert!(
            c < self.cols,
            "column {c} out of bounds ({} cols)",
            self.cols
        );
        assert_eq!(
            dst.len(),
            self.rows,
            "destination holds {} values, need {}",
            dst.len(),
            self.rows
        );
        for (d, row) in dst.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            *d = row[c];
        }
    }

    /// Copies every element from `src` (same shape), keeping this matrix's
    /// allocation.
    pub fn copy_from(&mut self, src: &Self) {
        self.assert_same_shape(src, "copy_from");
        self.data.copy_from_slice(&src.data);
    }

    /// Returns a new matrix with `f` applied element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two equally shaped matrices.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        self.assert_same_shape(other, "zip_map");
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `out = f(self, other)` element-wise, writing into caller-owned
    /// scratch (no allocation).
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    pub fn zip_map_into(&self, other: &Self, out: &mut Self, f: impl Fn(f32, f32) -> f32) {
        self.assert_same_shape(other, "zip_map_into");
        self.assert_same_shape(out, "zip_map_into (output)");
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = f(a, b);
        }
    }

    /// `self ∘= other`, element-wise (in-place Hadamard product).
    pub fn mul_assign(&mut self, other: &Self) {
        self.assert_same_shape(other, "mul_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= *b;
        }
    }

    /// Reshapes in place to `rows × cols` filled with zeros, keeping the
    /// allocation when the capacity suffices (scratch-buffer reuse).
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// `self += other`, element-wise.
    pub fn add_assign(&mut self, other: &Self) {
        self.assert_same_shape(other, "add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// `self -= other`, element-wise.
    pub fn sub_assign(&mut self, other: &Self) {
        self.assert_same_shape(other, "sub_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= *b;
        }
    }

    /// `self += alpha * other` (AXPY), element-wise.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        self.assert_same_shape(other, "axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * *b;
        }
    }

    /// Returns `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a + b)
    }

    /// Returns `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a - b)
    }

    /// Returns the element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Returns `alpha * self`.
    pub fn scaled(&self, alpha: f32) -> Self {
        self.map(|x| alpha * x)
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds the `1 × cols` row vector `bias` to every row.
    ///
    /// # Panics
    /// Panics if `bias` is not a row vector of matching width.
    pub fn add_row_broadcast(&mut self, bias: &Self) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(
            bias.cols, self.cols,
            "bias width {} != matrix width {}",
            bias.cols, self.cols
        );
        for r in 0..self.rows {
            for (x, b) in self.row_mut(r).iter_mut().zip(&bias.data) {
                *x += *b;
            }
        }
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    #[inline]
    pub fn matmul(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.rows, other.cols);
        self.matmul_acc(other, &mut out);
        out
    }

    /// `out = self · other`, overwriting caller-owned scratch (no
    /// allocation).
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    #[inline]
    pub fn matmul_into(&self, other: &Self, out: &mut Self) {
        out.fill_zero();
        self.matmul_acc(other, out);
    }

    /// `out += self · other`.
    ///
    /// Below the blocked-GEMM cutoff this runs the branch-free, eight-wide
    /// unrolled `ikj` loop; above it the product routes through the packed,
    /// register-tiled kernel in [`crate::gemm`] (bit-identical fold, see the
    /// module docs) using the calling thread's shared [`PackBuffers`].
    #[inline]
    pub fn matmul_acc(&self, other: &Self, out: &mut Self) {
        self.assert_matmul_shapes(other, out);
        gemm::auto_nn(self, other, out);
    }

    /// [`Matrix::matmul_acc`] with caller-owned packing scratch instead of
    /// the thread-local buffers.
    pub fn matmul_acc_with(&self, other: &Self, out: &mut Self, packs: &mut PackBuffers) {
        self.assert_matmul_shapes(other, out);
        gemm::auto_nn_with(self, other, out, packs);
    }

    #[inline]
    fn assert_matmul_shapes(&self, other: &Self, out: &Self) {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul output shape mismatch"
        );
    }

    /// Matrix product `selfᵀ · other` (used for weight gradients).
    pub fn matmul_tn(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.cols, other.cols);
        self.matmul_tn_acc(other, &mut out);
        out
    }

    /// `out = selfᵀ · other`, overwriting caller-owned scratch.
    #[inline]
    pub fn matmul_tn_into(&self, other: &Self, out: &mut Self) {
        out.fill_zero();
        self.matmul_tn_acc(other, out);
    }

    /// `out += selfᵀ · other`; dispatches like [`Matrix::matmul_acc`].
    #[inline]
    pub fn matmul_tn_acc(&self, other: &Self, out: &mut Self) {
        self.assert_matmul_tn_shapes(other, out);
        gemm::auto_tn(self, other, out);
    }

    /// [`Matrix::matmul_tn_acc`] with caller-owned packing scratch.
    pub fn matmul_tn_acc_with(&self, other: &Self, out: &mut Self, packs: &mut PackBuffers) {
        self.assert_matmul_tn_shapes(other, out);
        gemm::auto_tn_with(self, other, out, packs);
    }

    #[inline]
    fn assert_matmul_tn_shapes(&self, other: &Self, out: &Self) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn dimension mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "matmul_tn output shape mismatch"
        );
    }

    /// Matrix product `self · otherᵀ` (used for input gradients).
    pub fn matmul_nt(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.rows, other.rows);
        self.matmul_nt_acc(other, &mut out);
        out
    }

    /// `out = self · otherᵀ`, overwriting caller-owned scratch.
    #[inline]
    pub fn matmul_nt_into(&self, other: &Self, out: &mut Self) {
        out.fill_zero();
        self.matmul_nt_acc(other, out);
    }

    /// `out += self · otherᵀ`; dispatches like [`Matrix::matmul_acc`].
    #[inline]
    pub fn matmul_nt_acc(&self, other: &Self, out: &mut Self) {
        self.assert_matmul_nt_shapes(other, out);
        gemm::auto_nt(self, other, out);
    }

    /// [`Matrix::matmul_nt_acc`] with caller-owned packing scratch.
    pub fn matmul_nt_acc_with(&self, other: &Self, out: &mut Self, packs: &mut PackBuffers) {
        self.assert_matmul_nt_shapes(other, out);
        gemm::auto_nt_with(self, other, out, packs);
    }

    #[inline]
    fn assert_matmul_nt_shapes(&self, other: &Self, out: &Self) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt dimension mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_nt output shape mismatch"
        );
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// `out = selfᵀ`, overwriting caller-owned scratch.
    ///
    /// Walks 32×32 blocks so both the read and the write stream stay inside
    /// the cache; a naive row-major read / column-major write misses on
    /// every store once a column of the output no longer fits in L1.
    pub fn transpose_into(&self, out: &mut Self) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose output shape mismatch"
        );
        const BLOCK: usize = 32;
        for ib in (0..self.rows).step_by(BLOCK) {
            let i_end = (ib + BLOCK).min(self.rows);
            for jb in (0..self.cols).step_by(BLOCK) {
                let j_end = (jb + BLOCK).min(self.cols);
                for i in ib..i_end {
                    let row = &self.data[i * self.cols..(i + 1) * self.cols];
                    for (j, &v) in row[jb..j_end].iter().enumerate() {
                        out.data[(jb + j) * self.rows + i] = v;
                    }
                }
            }
        }
    }

    /// Dot product of two equally shaped matrices viewed as flat vectors.
    pub fn dot(&self, other: &Self) -> f32 {
        self.assert_same_shape(other, "dot");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Index of the maximum element of row `r` (first on ties).
    pub fn argmax_row(&self, r: usize) -> usize {
        crate::stats::argmax(self.row(r))
    }

    /// Clamps every element into `[lo, hi]` in place.
    pub fn clamp_inplace(&mut self, lo: f32, hi: f32) {
        for x in &mut self.data {
            *x = x.clamp(lo, hi);
        }
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Maximum absolute difference against another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        self.assert_same_shape(other, "max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    #[inline]
    fn assert_same_shape(&self, other: &Self, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:>9.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(12) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 12 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[3.0, 4.0, -1.0]]);
        assert_eq!(a.matmul(&Matrix::eye(3)), a);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_panics_on_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_row_broadcast_adds_bias_to_every_row() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&Matrix::row_vector(&[1.0, -1.0]));
        for r in 0..3 {
            assert_eq!(m.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn axpy_accumulates_scaled_values() {
        let mut a = Matrix::filled(1, 3, 1.0);
        let b = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a.row(0), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[2.0, 0.5], &[1.0, -1.0]]);
        assert_eq!(
            a.hadamard(&b),
            Matrix::from_rows(&[&[2.0, 1.0], &[3.0, -4.0]])
        );
    }

    #[test]
    fn reductions_and_norms() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(m.sum(), 7.0);
        assert_eq!(m.mean(), 3.5);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_row_breaks_ties_toward_first() {
        let m = Matrix::from_rows(&[&[1.0, 5.0, 5.0, 0.0]]);
        assert_eq!(m.argmax_row(0), 1);
    }

    #[test]
    fn copy_col_into_extracts_column() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut buf = [0.0; 3];
        m.copy_col_into(1, &mut buf);
        assert_eq!(buf, [2.0, 4.0, 6.0]);
    }

    #[test]
    fn transpose_into_handles_non_square_and_block_edges() {
        // 33×65 exercises partial blocks on both axes of the 32×32 tiling.
        let m = Matrix::from_fn(33, 65, |i, j| (i * 1000 + j) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (65, 33));
        for i in 0..33 {
            for j in 0..65 {
                assert_eq!(t[(j, i)], m[(i, j)]);
            }
        }
    }

    #[test]
    fn matmul_into_variants_match_allocating_paths() {
        let a = Matrix::from_fn(5, 7, |i, j| (i as f32 - j as f32) * 0.3);
        let b = Matrix::from_fn(7, 4, |i, j| (i * j) as f32 * 0.1 - 1.0);
        let bt = b.transpose();
        let mut out = Matrix::filled(5, 4, f32::NAN); // _into must overwrite
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));

        let c = Matrix::from_fn(5, 4, |i, j| (i + j) as f32);
        let mut out_tn = Matrix::filled(7, 4, f32::NAN);
        a.matmul_tn_into(&c, &mut out_tn);
        assert_eq!(out_tn, a.matmul_tn(&c));

        let mut out_nt = Matrix::filled(5, 4, f32::NAN);
        a.matmul_nt_into(&bt, &mut out_nt);
        assert_eq!(out_nt, a.matmul_nt(&bt));
    }

    #[test]
    fn has_non_finite_detects_nan() {
        let mut m = Matrix::zeros(1, 2);
        assert!(!m.has_non_finite());
        m[(0, 1)] = f32::NAN;
        assert!(m.has_non_finite());
    }

    #[test]
    fn from_fn_evaluates_positionally() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f32);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }
}
