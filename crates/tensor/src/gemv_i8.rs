//! Quantized (i8) packed GEMV: the fast-inference tier of [`crate::gemv`].
//!
//! The f32 packed layout already streams the weights exactly once per
//! decision, so its remaining cost at `1×128 · 128×384`-class shapes is the
//! *bytes themselves*: ~40% of the packed GRU step is weight traffic
//! (measured on the trajectory box; see PERF.md). [`PackedGemvWeightsI8`]
//! attacks that directly — the same column-panel decomposition as
//! [`crate::gemv::PackedGemvWeights`] (64/32/16/8 widths plus monomorphised
//! sub-8 tails, cache-line-aligned panel starts), but each panel stores its
//! weights as `i8` with **one f32 scale per panel**:
//!
//! ```text
//! q[k,j] = round(w[k,j] / scale),   scale = max|w| over the panel / 127
//! ```
//!
//! The kernel accumulates `acc[j] += x[k] · widen(q[k,j])` with the quantized
//! weights widened to f32 **in registers** (dequant-on-load: no dequantized
//! copy of the panel ever exists in memory), and applies the panel scale once
//! per output at the end: `y[j] = scale · acc[j]`. Weight traffic drops 4×
//! versus the f32 panels; the extra arithmetic is one widening convert per
//! product and one multiply per output.
//!
//! # Numerical contract
//!
//! This tier **deliberately leaves the bit-identity contract** of the f32
//! path. Round-to-nearest quantization bounds the element error by
//! `0.5 · scale`, so for any input `x`
//!
//! ```text
//! |y_q[j] − y[j]| ≤ 0.5 · scale(panel of j) · Σ_k |x[k]|  (+ f32 fold noise)
//! ```
//!
//! — the bound [`PackedGemvWeightsI8::error_bound`] computes and
//! `tests/gemv_i8_bounds.rs` pins via proptest. Whether that error is
//! acceptable is an *accuracy contract*, not an equivalence contract: the
//! workspace pins it end-to-end as rollout action-agreement between the
//! quantized and f32 inference engines (see `lahd_rl::InferEngine` and the
//! `quantized_agreement` suite). Per-row or per-column scales were
//! considered and rejected for now — per-panel already clears the ≥99.5%
//! agreement pin with margin, and finer scales buy accuracy the contract
//! does not need at the cost of a second streamed array (notes in PERF.md).
//!
//! Because no bit-identity contract constrains this tier, the explicit
//! widen-multiply kernels (AVX-512 where the CPU has it, AVX2/FMA
//! otherwise) are **runtime-dispatched on every build** — the same policy
//! as the f32 layout's runtime AVX-512 module, and the difference between
//! a ~1.1 µs and a ~0.6 µs kernel at the `128×128` decision shape (the
//! autovectoriser interleaves the widening converts poorly). The scalar
//! widen loop remains the portable fallback and the kernels' reference
//! semantics. Results are deterministic for a given binary and machine.

use crate::gemv::panel_width;
use crate::matrix::Matrix;

/// `i8`s per cache line; panel starts are padded to this so streaming loads
/// do not straddle lines (purely a bandwidth hint — kernels never assume
/// alignment).
const CACHE_LINE_I8: usize = 64;

/// One quantized column panel: `width` consecutive output columns starting
/// at `col`, stored row-major (`k × width`) at `data_off`, dequantized by
/// `scale`.
#[derive(Clone, Copy, Debug)]
struct PanelI8 {
    width: usize,
    data_off: usize,
    col: usize,
    scale: f32,
}

/// A `K × N` weight matrix packed into contiguous `i8` column panels with
/// per-panel f32 scales, for repeated `y = x·W` products (`x: 1×K`,
/// `y: 1×N`).
///
/// Pack once (at model load, or after an optimiser step), then call
/// [`PackedGemvWeightsI8::gemv_into`] per decision; the steady state
/// performs zero allocations and streams one quarter of the bytes the f32
/// pack would. See the [module docs](self) for the layout and the accuracy
/// contract.
#[derive(Clone, Debug, Default)]
pub struct PackedGemvWeightsI8 {
    k: usize,
    n: usize,
    data: Vec<i8>,
    panels: Vec<PanelI8>,
}

impl PackedGemvWeightsI8 {
    /// Quantizes and packs a single weight matrix.
    pub fn pack(w: &Matrix) -> Self {
        Self::pack_concat(&[w])
    }

    /// Packs several matrices of equal height side by side: the logical
    /// product is `x · [W₀ | W₁ | …]`, with `Wᵢ`'s outputs landing at
    /// column offset `Σ_{j<i} cols(Wⱼ)`. Each source matrix gets its own
    /// panels (and therefore its own scales), so the arithmetic per output
    /// column is identical to packing that matrix alone.
    ///
    /// # Panics
    /// Panics if the matrices disagree on row count.
    pub fn pack_concat(ws: &[&Matrix]) -> Self {
        let mut packed = Self::default();
        packed.repack_concat(ws);
        packed
    }

    /// Re-quantizes a single matrix in place, reusing the existing buffers
    /// (allocation-free once shapes have stabilised).
    pub fn repack(&mut self, w: &Matrix) {
        self.repack_concat(&[w]);
    }

    /// [`PackedGemvWeightsI8::pack_concat`] into existing buffers.
    ///
    /// # Panics
    /// Panics if the matrices disagree on row count.
    pub fn repack_concat(&mut self, ws: &[&Matrix]) {
        let k = ws.first().map_or(0, |w| w.rows());
        assert!(
            ws.iter().all(|w| w.rows() == k),
            "pack_concat requires equal row counts, got {:?}",
            ws.iter().map(|w| w.rows()).collect::<Vec<_>>()
        );
        self.k = k;
        self.n = ws.iter().map(|w| w.cols()).sum();
        self.panels.clear();
        self.data.clear();
        self.data
            .reserve(self.k * self.n + CACHE_LINE_I8 * (self.n / 8 + 2));
        let mut col_base = 0;
        for w in ws {
            let mut col = 0;
            while col < w.cols() {
                let width = panel_width(w.cols() - col);
                let aligned = self.data.len().next_multiple_of(CACHE_LINE_I8);
                // Pass 1: the panel's dynamic range fixes the scale. The
                // scan runs in the integer domain — for finite IEEE floats
                // `|a| ≤ |b|` iff their sign-cleared bit patterns compare
                // the same way, and integer max-reductions vectorise where
                // float `max` (NaN semantics) does not.
                let mut max_bits = 0u32;
                for r in 0..k {
                    for &v in &w.row(r)[col..col + width] {
                        max_bits = max_bits.max(v.to_bits() & 0x7fff_ffff);
                    }
                }
                let max_abs = f32::from_bits(max_bits);
                let mut scale = if max_abs > 0.0 { max_abs / 127.0 } else { 0.0 };
                let mut inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
                if !inv.is_finite() {
                    // Sub-normal panel maxima (max|w| ≲ 3.7e-37): 1/scale
                    // overflows, and an infinite `inv` would drive the
                    // vector quantizer to ±saturation instead of ±127
                    // (sign-flipping positives) — far outside the error
                    // bound. Weights that tiny contribute nothing a
                    // quantized tier could represent; zero the panel.
                    scale = 0.0;
                    inv = 0.0;
                }
                // Pass 2: round-to-nearest(-even) quantization — the
                // hardware rounding of `cvtps2dq`, so the vector kernel
                // and the scalar fallback agree (a libm `round()` call per
                // weight made repack ~20× slower than the f32 pack).
                // `|v·inv| ≤ 127` by construction; saturation only guards
                // the one-ULP edge of the reciprocal multiply.
                self.data.resize(aligned + k * width, 0);
                let dst = &mut self.data[aligned..];
                for r in 0..k {
                    let src = &w.row(r)[col..col + width];
                    quantize_slice(src, inv, &mut dst[r * width..(r + 1) * width]);
                }
                self.panels.push(PanelI8 {
                    width,
                    data_off: aligned,
                    col: col_base + col,
                    scale,
                });
                col += width;
            }
            col_base += w.cols();
        }
    }

    /// Height `K` of the packed matrix (input width).
    #[inline]
    pub fn rows(&self) -> usize {
        self.k
    }

    /// Width `N` of the packed matrix (output width; summed over sources
    /// for concatenated packs).
    #[inline]
    pub fn cols(&self) -> usize {
        self.n
    }

    /// The largest per-panel dequantization scale: one quantization step of
    /// the coarsest panel is `max_scale()`, i.e. the worst per-weight error
    /// is `0.5 · max_scale()`.
    pub fn max_scale(&self) -> f32 {
        self.panels.iter().map(|p| p.scale).fold(0.0, f32::max)
    }

    /// A priori bound on `max_j |y_q[j] − y[j]|` for input `x`, from the
    /// round-to-nearest error of the quantized weights (excludes the — much
    /// smaller — f32 accumulation noise both paths share). See the
    /// [module docs](self).
    pub fn error_bound(&self, x: &[f32]) -> f32 {
        let sum_abs: f32 = x.iter().map(|v| v.abs()).sum();
        0.5 * self.max_scale() * sum_abs
    }

    /// `y = x · W_q`, overwriting `y` with the dequantized product.
    ///
    /// # Panics
    /// Panics unless `x.len() == rows()` and `y.len() == cols()`.
    pub fn gemv_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.k, "gemv input width mismatch");
        assert_eq!(y.len(), self.n, "gemv output width mismatch");
        for p in &self.panels {
            let panel = &self.data[p.data_off..p.data_off + self.k * p.width];
            let out = &mut y[p.col..p.col + p.width];
            // Monomorphised widths, like the f32 tier: a runtime-bounded
            // inner loop would spill the accumulators.
            match p.width {
                64 => panel_kernel_i8::<64>(x, panel, p.scale, out),
                32 => panel_kernel_i8::<32>(x, panel, p.scale, out),
                16 => panel_kernel_i8::<16>(x, panel, p.scale, out),
                8 => panel_kernel_i8::<8>(x, panel, p.scale, out),
                7 => panel_scalar_i8::<7>(x, panel, p.scale, out),
                6 => panel_scalar_i8::<6>(x, panel, p.scale, out),
                5 => panel_scalar_i8::<5>(x, panel, p.scale, out),
                4 => panel_scalar_i8::<4>(x, panel, p.scale, out),
                3 => panel_scalar_i8::<3>(x, panel, p.scale, out),
                2 => panel_scalar_i8::<2>(x, panel, p.scale, out),
                1 => panel_scalar_i8::<1>(x, panel, p.scale, out),
                w => unreachable!("panel decomposition produced width {w}"),
            }
        }
    }
}

/// Panel kernel entry: the explicit widen-multiply kernels when the CPU
/// supports them (runtime-detected on **every** build — this tier has no
/// bit-identity contract to preserve, see the [module docs](self)),
/// otherwise the scalar widen loop.
#[inline]
fn panel_kernel_i8<const W: usize>(x: &[f32], panel: &[i8], scale: f32, y: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if widen::available() {
        widen::panel::<W>(x, panel, scale, y);
        return;
    }
    panel_scalar_i8::<W>(x, panel, scale, y);
}

/// Quantizes one row slice: `dst[i] = round_ties_even(src[i] · inv)`,
/// saturating-narrowed to i8. Runtime-dispatched to the vector kernels on
/// x86-64 (the `as i8` saturating cast defeats the autovectoriser), scalar
/// otherwise. Non-finite inputs land on an arbitrary level (0 scalar, −128
/// vector); weights are finite by the training-side contract.
#[inline]
fn quantize_slice(src: &[f32], inv: f32, dst: &mut [i8]) {
    #[cfg(target_arch = "x86_64")]
    if widen::available() {
        widen::quantize_slice(src, inv, dst);
        return;
    }
    quantize_slice_scalar(src, inv, dst);
}

/// Portable reference semantics of [`quantize_slice`].
#[inline]
fn quantize_slice_scalar(src: &[f32], inv: f32, dst: &mut [i8]) {
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = (v * inv).round_ties_even() as i8;
    }
}

/// Scalar quantized panel kernel: `W` f32 accumulators in a fixed-size
/// array the compiler keeps in vector registers, weights widened i8→f32 in
/// the loop body, one scale multiply per output at the end.
#[inline]
fn panel_scalar_i8<const W: usize>(x: &[f32], panel: &[i8], scale: f32, y: &mut [f32]) {
    debug_assert_eq!(panel.len(), x.len() * W);
    let mut acc = [0.0f32; W];
    for (row, &xv) in panel.chunks_exact(W).zip(x) {
        for (a, &wv) in acc.iter_mut().zip(row) {
            *a += xv * f32::from(wv);
        }
    }
    for (o, &a) in y.iter_mut().zip(acc.iter()) {
        *o = a * scale;
    }
}

/// Explicit widen-multiply panel kernels: 512-bit where the CPU has
/// AVX-512F, 256-bit AVX2/FMA otherwise, runtime-detected on every build
/// (the quantized tier has no bit-identity contract, so — unlike the f32
/// FMA kernels — nothing forces these behind the `simd` feature; the f32
/// `wide` module sets the precedent for default-build runtime dispatch).
///
/// The workspace denies `unsafe_code`; like the f32 GEMV kernels this
/// module is an audited exception — `std::arch` intrinsics are unsafe by
/// signature. Safety rests on runtime feature detection plus the length
/// checks in the safe wrapper.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod widen {
    use std::arch::x86_64::{
        __m128i, _mm256_castsi256_si128, _mm256_cvtepi32_ps, _mm256_cvtepi8_epi32,
        _mm256_cvtps_epi32, _mm256_extracti128_si256, _mm256_fmadd_ps, _mm256_loadu_ps,
        _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps, _mm512_cvtepi32_ps,
        _mm512_cvtepi8_epi32, _mm512_cvtps_epi32, _mm512_cvtsepi32_epi8, _mm512_fmadd_ps,
        _mm512_loadu_ps, _mm512_mul_ps, _mm512_set1_ps, _mm512_setzero_ps, _mm512_storeu_ps,
        _mm_loadl_epi64, _mm_loadu_si128, _mm_packs_epi16, _mm_packs_epi32, _mm_storel_epi64,
        _mm_storeu_si128,
    };
    use std::sync::OnceLock;

    /// Runtime AVX2+FMA detection, cached after the first call.
    pub(super) fn available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE
            .get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }

    /// Runtime AVX-512F detection, cached after the first call.
    fn wide_available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| is_x86_feature_detected!("avx512f"))
    }

    /// Safe wrapper: validates lengths, then dispatches to the
    /// lane-monomorphised target-feature kernel.
    pub(super) fn panel<const W: usize>(x: &[f32], panel: &[i8], scale: f32, y: &mut [f32]) {
        assert!(
            panel.len() >= x.len() * W,
            "packed panel shorter than k rows"
        );
        assert_eq!(y.len(), W, "panel output width mismatch");
        debug_assert!(available());
        // SAFETY: `available()`/`wide_available()` gate on runtime CPU
        // support; the asserts above guarantee every `k`-indexed panel load
        // (8 or 16 bytes) and every output store stays in bounds.
        unsafe {
            if W >= 16 && wide_available() {
                match W {
                    64 => panel_512::<4>(x, panel, scale, y),
                    32 => panel_512::<2>(x, panel, scale, y),
                    16 => panel_512::<1>(x, panel, scale, y),
                    _ => unreachable!("unsupported wide panel width {W}"),
                }
                return;
            }
            match W {
                64 => panel_fma::<8>(x, panel, scale, y),
                32 => panel_fma::<4>(x, panel, scale, y),
                16 => panel_fma::<2>(x, panel, scale, y),
                8 => panel_fma::<1>(x, panel, scale, y),
                _ => unreachable!("unsupported panel width {W}"),
            }
        }
    }

    /// Vector quantization of one row slice: multiply by the reciprocal
    /// scale, `cvtps2dq` (round-to-nearest-even, the scalar fallback's
    /// `round_ties_even`), saturating-narrow to i8. 512-bit where the CPU
    /// has AVX-512F, 256-bit otherwise, scalar tail either way.
    pub(super) fn quantize_slice(src: &[f32], inv: f32, dst: &mut [i8]) {
        assert!(dst.len() >= src.len(), "quantize destination too short");
        debug_assert!(available());
        // SAFETY: `available()`/`wide_available()` gate on runtime CPU
        // support; both kernels stop `16`/`8` elements before the length
        // checked above and finish with a scalar tail.
        unsafe {
            if wide_available() {
                quantize_512(src, inv, dst);
            } else {
                quantize_256(src, inv, dst);
            }
        }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn quantize_512(src: &[f32], inv: f32, dst: &mut [i8]) {
        let vinv = _mm512_set1_ps(inv);
        let n = src.len();
        let mut i = 0;
        while i + 16 <= n {
            let x = _mm512_mul_ps(_mm512_loadu_ps(src.as_ptr().add(i)), vinv);
            let q = _mm512_cvtps_epi32(x);
            let b = _mm512_cvtsepi32_epi8(q);
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast::<__m128i>(), b);
            i += 16;
        }
        super::quantize_slice_scalar(&src[i..], inv, &mut dst[i..n]);
    }

    #[target_feature(enable = "avx2")]
    unsafe fn quantize_256(src: &[f32], inv: f32, dst: &mut [i8]) {
        let vinv = _mm256_set1_ps(inv);
        let n = src.len();
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_mul_ps(_mm256_loadu_ps(src.as_ptr().add(i)), vinv);
            let q = _mm256_cvtps_epi32(x);
            let w16 = _mm_packs_epi32(_mm256_castsi256_si128(q), _mm256_extracti128_si256::<1>(q));
            let b8 = _mm_packs_epi16(w16, w16);
            _mm_storel_epi64(dst.as_mut_ptr().add(i).cast::<__m128i>(), b8);
            i += 8;
        }
        super::quantize_slice_scalar(&src[i..], inv, &mut dst[i..n]);
    }

    /// `L` 256-bit accumulators (8·L panel columns) in registers across the
    /// whole `k` loop: widen 8 quantized weights i8→i32→f32, broadcast
    /// `x[k]`, one FMA per lane; the panel scale is applied once per lane at
    /// the end.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn panel_fma<const L: usize>(x: &[f32], panel: &[i8], scale: f32, y: &mut [f32]) {
        let p = panel.as_ptr();
        let mut acc = [_mm256_setzero_ps(); L];
        for (kk, &xv) in x.iter().enumerate() {
            let xb = _mm256_set1_ps(xv);
            let row = p.add(kk * L * 8);
            for (l, a) in acc.iter_mut().enumerate() {
                let q = _mm_loadl_epi64(row.add(l * 8).cast::<__m128i>());
                let w = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q));
                *a = _mm256_fmadd_ps(xb, w, *a);
            }
        }
        let s = _mm256_set1_ps(scale);
        for (l, a) in acc.iter().enumerate() {
            _mm256_storeu_ps(y.as_mut_ptr().add(l * 8), _mm256_mul_ps(*a, s));
        }
    }

    /// `L` 512-bit accumulators (16·L panel columns): widen 16 quantized
    /// weights per lane per `k`, FMA against the broadcast input, scale
    /// once at the end.
    #[target_feature(enable = "avx512f")]
    unsafe fn panel_512<const L: usize>(x: &[f32], panel: &[i8], scale: f32, y: &mut [f32]) {
        let p = panel.as_ptr();
        let mut acc = [_mm512_setzero_ps(); L];
        for (kk, &xv) in x.iter().enumerate() {
            let xb = _mm512_set1_ps(xv);
            let row = p.add(kk * L * 16);
            for (l, a) in acc.iter_mut().enumerate() {
                let q = _mm_loadu_si128(row.add(l * 16).cast::<__m128i>());
                let w = _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(q));
                *a = _mm512_fmadd_ps(xb, w, *a);
            }
        }
        let s = _mm512_set1_ps(scale);
        for (l, a) in acc.iter().enumerate() {
            _mm512_storeu_ps(y.as_mut_ptr().add(l * 16), _mm512_mul_ps(*a, s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, cols: usize, seed: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            ((i * 31 + j * 17 + seed * 13 + 7) % 97) as f32 / 48.5 - 1.0
        })
    }

    #[test]
    fn panel_decomposition_covers_all_columns() {
        for n in [1, 7, 8, 9, 15, 16, 31, 33, 63, 64, 65, 127, 128, 384] {
            let w = dense(3, n, n);
            let packed = PackedGemvWeightsI8::pack(&w);
            assert_eq!(packed.cols(), n);
            let mut covered = vec![false; n];
            for p in &packed.panels {
                for c in p.col..p.col + p.width {
                    assert!(!covered[c], "column {c} packed twice (n={n})");
                    covered[c] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "columns uncovered at n={n}");
        }
    }

    #[test]
    fn quantized_gemv_stays_within_its_error_bound() {
        let x = dense(1, 128, 0);
        let w = dense(128, 128, 1);
        let mut want = Matrix::zeros(1, 128);
        x.matmul_into(&w, &mut want);
        let packed = PackedGemvWeightsI8::pack(&w);
        let mut y = vec![f32::NAN; 128];
        packed.gemv_into(x.row(0), &mut y);
        let bound = packed.error_bound(x.row(0)) * 1.001 + 1e-5;
        for (j, (got, wanted)) in y.iter().zip(want.row(0)).enumerate() {
            let diff = (got - wanted).abs();
            assert!(diff <= bound, "column {j}: |{got} − {wanted}| > {bound}");
        }
    }

    #[test]
    fn exactly_representable_weights_round_trip() {
        // With max|w| = 1 the scale is exactly 1/127, so weights on the
        // q/127 integer grid quantize without error and the product differs
        // from f32 only by fold noise.
        let k = 16;
        let w = Matrix::from_fn(k, 8, |i, j| ((i * 8 + j) as f32 - 127.0) / 127.0);
        let x = dense(1, k, 3);
        let mut want = Matrix::zeros(1, 8);
        x.matmul_into(&w, &mut want);
        let packed = PackedGemvWeightsI8::pack(&w);
        let mut y = vec![0.0f32; 8];
        packed.gemv_into(x.row(0), &mut y);
        for (got, wanted) in y.iter().zip(want.row(0)) {
            assert!(
                (got - wanted).abs() < 1e-5,
                "lossless panel drifted: {got} vs {wanted}"
            );
        }
    }

    #[test]
    fn subnormal_scale_panels_quantize_to_zero_not_saturation() {
        // max|w| small enough that 1/scale overflows f32: the panel must
        // degrade to all-zero output (error ≪ any other panel's bound),
        // not to sign-flipped ±saturation from an infinite reciprocal.
        let w = Matrix::from_fn(16, 64, |i, j| {
            1.0e-38 * (1.0 + ((i * 64 + j) % 7) as f32) * if j % 2 == 0 { 1.0 } else { -1.0 }
        });
        let packed = PackedGemvWeightsI8::pack(&w);
        assert_eq!(packed.max_scale(), 0.0);
        let x = dense(1, 16, 9);
        let mut y = vec![f32::NAN; 64];
        packed.gemv_into(x.row(0), &mut y);
        assert!(y.iter().all(|&v| v == 0.0), "saturated output: {y:?}");
    }

    #[test]
    fn all_zero_panel_yields_zero_scale_and_zero_output() {
        let w = Matrix::zeros(12, 40);
        let packed = PackedGemvWeightsI8::pack(&w);
        assert_eq!(packed.max_scale(), 0.0);
        let x = dense(1, 12, 5);
        let mut y = vec![f32::NAN; 40];
        packed.gemv_into(x.row(0), &mut y);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_operands_are_harmless() {
        let w = Matrix::zeros(0, 0);
        let packed = PackedGemvWeightsI8::pack(&w);
        let mut y: Vec<f32> = Vec::new();
        packed.gemv_into(&[], &mut y);
        assert_eq!(packed.rows(), 0);
        assert_eq!(packed.cols(), 0);
    }

    #[test]
    #[should_panic(expected = "equal row counts")]
    fn concat_rejects_ragged_heights() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(2, 4);
        let _ = PackedGemvWeightsI8::pack_concat(&[&a, &b]);
    }
}
