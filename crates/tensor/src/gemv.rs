//! Packed GEMV: the `1×K · K×N` inference engine behind per-decision latency.
//!
//! The blocked GEMM in [`crate::gemm`] deliberately excludes vector–matrix
//! shapes (`should_block` requires ≥ two row strips), so single-decision
//! inference — one observation row through the GRU torso and heads — runs
//! the unblocked `ikj` axpy loop. That loop is optimal for *streaming* `W`
//! but pays a hidden tax on `1×K` inputs: the output row is re-loaded and
//! re-stored for **every** value of `k`, because `N` accumulators do not fit
//! in the register file next to the broadcast and the weight row. At
//! `1×128 · 128×128` that is 128 extra round trips of a 512-byte row
//! through L1 — measurably more than half the kernel's time.
//!
//! [`PackedGemvWeights`] removes the tax with a pack-once/reuse-forever
//! layout: the weight matrix is cut into **column panels** of register-tile
//! width (64/32/16/8 columns), each panel stored row-major and contiguous.
//! The panel kernel keeps one accumulator per panel column — at most 64
//! floats, i.e. 8 AVX2 registers — for the *entire* `k` loop: weights
//! stream linearly exactly once, the input row stays in L1, and the output
//! is stored exactly once at the end. This is what a column-major /
//! pre-transposed layout buys for `1×K` shapes, without the transposed
//! dot-product form's drawback of reordering the reduction (see below).
//! Packing costs one pass over `W`, so it amortises after a single matvec;
//! the intended pattern is pack at load (or after each optimiser step via
//! `repack*`) and reuse across every decision in between.
//!
//! Several same-height matrices can be packed side by side with
//! [`PackedGemvWeights::pack_concat`]; one [`PackedGemvWeights::gemv_into`]
//! call then computes all their products in a single traversal. The GRU
//! inference path uses this to fuse the three gate matvecs per operand
//! (`x·[Wz|Wr|Wn]`, `h·[Uz|Ur]`): one pass, one set of register
//! accumulators per panel, three gate pre-activations out.
//!
//! # Numerical contract
//!
//! Each output element is an ascending-`k` fold `y[j] = Σ_k x[k]·W[k,j]`
//! accumulated from zero with one `mul` + one `add` per product — exactly
//! the fold `Matrix::matmul_into` performs on these shapes through the
//! unblocked `A·B` kernel. The default build is therefore **bit-identical**
//! to `mm_into` for every `1×K` product, for any panel decomposition
//! (`tests/gemv_equivalence.rs` pins this) — *including* its
//! runtime-detected AVX-512 path, which widens the vectors but keeps the
//! separate `mul`/`add` roundings (see the `wide` module). A fully transposed
//! dot-product layout was rejected for exactly this reason: fast dot
//! kernels need lane-split accumulators, which reorder the reduction and
//! break the bit-identity the train-then-infer equivalence tests rely on.
//! With the `simd` cargo feature the panel kernel instead uses FMA
//! (512-bit where available, AVX2 otherwise); as with the blocked GEMM,
//! FMA rounds once per product instead of twice, so that build is close
//! but not bit-equal (deterministic for a given binary; the non-x86
//! fallback stays bit-equal).

use crate::matrix::Matrix;

/// Widest panel (and register tile) the kernels use: 64 columns = 8 AVX2
/// vectors of accumulators, leaving room for the broadcast and weight rows.
pub const GEMV_MAX_PANEL: usize = 64;

/// `f32`s per cache line; panel starts are padded to this so streaming
/// loads do not straddle lines.
const CACHE_LINE_F32: usize = 16;

/// One column panel of the packed weights: `width` consecutive output
/// columns starting at `col`, stored row-major (`k × width`) at `data_off`.
#[derive(Clone, Copy, Debug)]
struct Panel {
    width: usize,
    data_off: usize,
    col: usize,
}

/// Greedy register-tile decomposition of a remaining column count. Powers
/// of two down to 8 keep every panel on a monomorphised kernel with full
/// vector accumulators; a final sub-8 remainder runs the scalar tail.
/// Shared with the quantized layout in [`crate::gemv_i8`], so the two tiers
/// always agree on the panel geometry.
#[inline]
pub(crate) fn panel_width(remaining: usize) -> usize {
    match remaining {
        r if r >= 64 => 64,
        r if r >= 32 => 32,
        r if r >= 16 => 16,
        r if r >= 8 => 8,
        r => r,
    }
}

/// A `K × N` weight matrix packed into contiguous column panels for
/// repeated `y = x·W` products (`x: 1×K`, `y: 1×N`).
///
/// Pack once (at model load, or after an optimiser step), then call
/// [`PackedGemvWeights::gemv_into`] per decision; the steady state performs
/// zero allocations and streams the weights exactly once per product. See
/// the [module docs](self) for the layout and the numerical contract.
#[derive(Clone, Debug, Default)]
pub struct PackedGemvWeights {
    k: usize,
    n: usize,
    data: Vec<f32>,
    panels: Vec<Panel>,
}

impl PackedGemvWeights {
    /// Packs a single weight matrix.
    pub fn pack(w: &Matrix) -> Self {
        Self::pack_concat(&[w])
    }

    /// Packs several matrices of equal height side by side: the logical
    /// product is `x · [W₀ | W₁ | …]`, with `Wᵢ`'s outputs landing at
    /// column offset `Σ_{j<i} cols(Wⱼ)`.
    ///
    /// Each source matrix gets its own panels, so the arithmetic per output
    /// column is identical to packing that matrix alone.
    ///
    /// # Panics
    /// Panics if the matrices disagree on row count.
    pub fn pack_concat(ws: &[&Matrix]) -> Self {
        let mut packed = Self::default();
        packed.repack_concat(ws);
        packed
    }

    /// Re-packs a single matrix in place, reusing the existing buffers
    /// (allocation-free once shapes have stabilised).
    pub fn repack(&mut self, w: &Matrix) {
        self.repack_concat(&[w]);
    }

    /// [`PackedGemvWeights::pack_concat`] into existing buffers.
    ///
    /// # Panics
    /// Panics if the matrices disagree on row count.
    pub fn repack_concat(&mut self, ws: &[&Matrix]) {
        let k = ws.first().map_or(0, |w| w.rows());
        assert!(
            ws.iter().all(|w| w.rows() == k),
            "pack_concat requires equal row counts, got {:?}",
            ws.iter().map(|w| w.rows()).collect::<Vec<_>>()
        );
        self.k = k;
        self.n = ws.iter().map(|w| w.cols()).sum();
        self.panels.clear();
        self.data.clear();
        self.data
            .reserve(self.k * self.n + CACHE_LINE_F32 * (self.n / 8 + 2));
        let mut col_base = 0;
        for w in ws {
            let mut col = 0;
            while col < w.cols() {
                let width = panel_width(w.cols() - col);
                // Start every panel on a cache-line boundary (relative to
                // the buffer base, which the allocator aligns to ≥16 bytes;
                // absolute 64-byte alignment additionally depends on the
                // allocation): line-split vector loads cost double on the
                // streaming side, and the kernels never assume alignment,
                // so this is purely a bandwidth hint.
                let aligned = self.data.len().next_multiple_of(CACHE_LINE_F32);
                self.data.resize(aligned, 0.0);
                self.panels.push(Panel {
                    width,
                    data_off: aligned,
                    col: col_base + col,
                });
                for r in 0..k {
                    self.data.extend_from_slice(&w.row(r)[col..col + width]);
                }
                col += width;
            }
            col_base += w.cols();
        }
    }

    /// Height `K` of the packed matrix (input width).
    #[inline]
    pub fn rows(&self) -> usize {
        self.k
    }

    /// Width `N` of the packed matrix (output width; summed over sources
    /// for concatenated packs).
    #[inline]
    pub fn cols(&self) -> usize {
        self.n
    }

    /// `y = x · W`, overwriting `y`.
    ///
    /// Scalar builds are bit-identical to `Matrix::matmul_into` on the same
    /// operands; see the [module docs](self).
    ///
    /// # Panics
    /// Panics unless `x.len() == rows()` and `y.len() == cols()`.
    pub fn gemv_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.k, "gemv input width mismatch");
        assert_eq!(y.len(), self.n, "gemv output width mismatch");
        let mut i = 0;
        while i < self.panels.len() {
            let p = self.panels[i];
            // Adjacent full-width panels fuse into one AVX-512 pass: one
            // broadcast of `x[k]` feeds eight accumulator registers, so
            // loop control and the broadcast amortise over 128 columns.
            // Output columns of consecutive panels are always contiguous.
            #[cfg(target_arch = "x86_64")]
            if p.width == 64
                && i + 1 < self.panels.len()
                && self.panels[i + 1].width == 64
                && wide::available()
            {
                let q = self.panels[i + 1];
                debug_assert_eq!(q.col, p.col + 64);
                let pa = &self.data[p.data_off..p.data_off + self.k * 64];
                let pb = &self.data[q.data_off..q.data_off + self.k * 64];
                let (ya, yb) = y[p.col..p.col + 128].split_at_mut(64);
                #[cfg(feature = "simd")]
                if simd::available() {
                    wide::panel_pair64::<true>(x, pa, pb, ya, yb);
                    i += 2;
                    continue;
                }
                wide::panel_pair64::<false>(x, pa, pb, ya, yb);
                i += 2;
                continue;
            }
            let panel = &self.data[p.data_off..p.data_off + self.k * p.width];
            let out = &mut y[p.col..p.col + p.width];
            // Every width is monomorphised: a runtime-bounded inner loop
            // would stop the compiler from keeping the accumulators in
            // registers, which is the whole point of the layout.
            match p.width {
                64 => panel_kernel::<64>(x, panel, out),
                32 => panel_kernel::<32>(x, panel, out),
                16 => panel_kernel::<16>(x, panel, out),
                8 => panel_kernel::<8>(x, panel, out),
                7 => panel_scalar::<7>(x, panel, out),
                6 => panel_scalar::<6>(x, panel, out),
                5 => panel_scalar::<5>(x, panel, out),
                4 => panel_scalar::<4>(x, panel, out),
                3 => panel_scalar::<3>(x, panel, out),
                2 => panel_scalar::<2>(x, panel, out),
                1 => panel_scalar::<1>(x, panel, out),
                w => unreachable!("panel decomposition produced width {w}"),
            }
            i += 1;
        }
    }
}

/// Panel kernel entry, in order of preference:
///
/// 1. `simd` feature + runtime AVX2/FMA: fused multiply-add (one rounding
///    per product — fast, not bit-equal to the scalar fold);
/// 2. runtime AVX-512F (any build): 512-bit `mul` + `add` — **the same
///    two-rounding per-element arithmetic as the scalar fold**, so this
///    path stays bit-identical to `mm_into`; it is pure vectorisation, the
///    compiler just will not pick 512-bit lanes on its own;
/// 3. the scalar loop (which the autovectoriser turns into 256-bit
///    mul+add).
#[inline]
fn panel_kernel<const W: usize>(x: &[f32], panel: &[f32], y: &mut [f32]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::available() {
        simd::panel::<W>(x, panel, y);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if W >= 16 && wide::available() {
        wide::panel::<W, false>(x, panel, y);
        return;
    }
    panel_scalar::<W>(x, panel, y);
}

/// Scalar panel kernel: `W` accumulators held in a fixed-size array the
/// compiler keeps in vector registers (the same trick as the GEMM
/// microkernel), ascending-`k` mul+add fold, one store per output at the
/// end. `chunks_exact` removes the bounds checks from the hot loop.
#[inline]
fn panel_scalar<const W: usize>(x: &[f32], panel: &[f32], y: &mut [f32]) {
    debug_assert_eq!(panel.len(), x.len() * W);
    let mut acc = [0.0f32; W];
    for (row, &xv) in panel.chunks_exact(W).zip(x) {
        for (a, &wv) in acc.iter_mut().zip(row) {
            *a += xv * wv;
        }
    }
    y.copy_from_slice(&acc);
}

/// Runtime-detected AVX-512F panel kernels.
///
/// With `FMA = false` (the default build's dispatch) these do not change
/// the numerical contract: each lane performs the same `mul` followed by
/// the same `add` (two roundings, ascending `k`) as the scalar fold, so
/// the results are bit-identical — the intrinsics only widen the vectors
/// beyond what the autovectoriser is willing to emit (LLVM prefers 256-bit
/// lanes on current x86 targets), which is why this module is *not* behind
/// the `simd` feature. `tests/gemv_equivalence.rs` exercises this path
/// with exact equality on any AVX-512 machine. The `FMA = true`
/// instantiations fuse the multiply-add and are reachable only from the
/// `simd` feature's dispatch (one shared kernel body, so a bounds or
/// stride fix cannot miss one variant).
///
/// Like the GEMM microkernel, this module is an audited exception to the
/// workspace-wide `unsafe_code` denial: `std::arch` intrinsics are unsafe
/// by signature, and safety rests on the runtime `avx512f` check plus the
/// length validation in the safe wrapper.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod wide {
    use std::arch::x86_64::{
        _mm512_add_ps, _mm512_loadu_ps, _mm512_mul_ps, _mm512_set1_ps, _mm512_setzero_ps,
        _mm512_storeu_ps,
    };
    use std::sync::OnceLock;

    /// Runtime AVX-512F detection, cached after the first call.
    pub(super) fn available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| is_x86_feature_detected!("avx512f"))
    }

    /// Safe wrapper: validates lengths, then dispatches to the
    /// lane-monomorphised target-feature kernel.
    pub(super) fn panel<const W: usize, const FMA: bool>(x: &[f32], panel: &[f32], y: &mut [f32]) {
        assert!(
            panel.len() >= x.len() * W,
            "packed panel shorter than k rows"
        );
        assert_eq!(y.len(), W, "panel output width mismatch");
        debug_assert!(available());
        // SAFETY: `available()` gates on runtime avx512f support; the
        // asserts above guarantee every `k`-indexed panel load and every
        // 16-float output store below stays in bounds.
        unsafe {
            match W {
                64 => panel_512::<4, FMA>(x, panel, y),
                32 => panel_512::<2, FMA>(x, panel, y),
                16 => panel_512::<1, FMA>(x, panel, y),
                _ => unreachable!("unsupported wide panel width {W}"),
            }
        }
    }

    /// One accumulate step per lane, monomorphised over the contract:
    /// `FMA = false` is `mul` then `add` (two roundings — bit-identical to
    /// the scalar fold), `FMA = true` is a fused multiply-add (one
    /// rounding; reachable only from the `simd` feature's dispatch). Pure
    /// register ops, so safe to call from any avx512f context.
    #[target_feature(enable = "avx512f")]
    #[inline]
    fn accumulate<const FMA: bool>(
        acc: std::arch::x86_64::__m512,
        xb: std::arch::x86_64::__m512,
        w: std::arch::x86_64::__m512,
    ) -> std::arch::x86_64::__m512 {
        if FMA {
            std::arch::x86_64::_mm512_fmadd_ps(xb, w, acc)
        } else {
            _mm512_add_ps(acc, _mm512_mul_ps(xb, w))
        }
    }

    /// Fused pass over two adjacent 64-wide panels: one broadcast of
    /// `x[k]` feeds all eight accumulators, halving loop/broadcast
    /// overhead per column.
    pub(super) fn panel_pair64<const FMA: bool>(
        x: &[f32],
        pa: &[f32],
        pb: &[f32],
        ya: &mut [f32],
        yb: &mut [f32],
    ) {
        assert!(pa.len() >= x.len() * 64 && pb.len() >= x.len() * 64);
        assert!(ya.len() == 64 && yb.len() == 64);
        debug_assert!(available());
        // SAFETY: as for `panel`, plus the pair-length asserts above.
        unsafe { pair_512::<FMA>(x, pa, pb, ya, yb) }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn pair_512<const FMA: bool>(
        x: &[f32],
        pa: &[f32],
        pb: &[f32],
        ya: &mut [f32],
        yb: &mut [f32],
    ) {
        let a = pa.as_ptr();
        let b = pb.as_ptr();
        let mut acc_a = [_mm512_setzero_ps(); 4];
        let mut acc_b = [_mm512_setzero_ps(); 4];
        for (kk, &xv) in x.iter().enumerate() {
            let xb = _mm512_set1_ps(xv);
            let ra = a.add(kk * 64);
            let rb = b.add(kk * 64);
            for l in 0..4 {
                acc_a[l] = accumulate::<FMA>(acc_a[l], xb, _mm512_loadu_ps(ra.add(l * 16)));
                acc_b[l] = accumulate::<FMA>(acc_b[l], xb, _mm512_loadu_ps(rb.add(l * 16)));
            }
        }
        for l in 0..4 {
            _mm512_storeu_ps(ya.as_mut_ptr().add(l * 16), acc_a[l]);
            _mm512_storeu_ps(yb.as_mut_ptr().add(l * 16), acc_b[l]);
        }
    }

    /// `L` 512-bit accumulators (16·L panel columns) in registers across
    /// the whole `k` loop. (Software prefetch was measured here and lost
    /// ~4% — the extra load port pressure outweighs what the hardware
    /// streamer misses.)
    #[target_feature(enable = "avx512f")]
    unsafe fn panel_512<const L: usize, const FMA: bool>(x: &[f32], panel: &[f32], y: &mut [f32]) {
        let p = panel.as_ptr();
        let mut acc = [_mm512_setzero_ps(); L];
        for (kk, &xv) in x.iter().enumerate() {
            let xb = _mm512_set1_ps(xv);
            let row = p.add(kk * L * 16);
            for (l, a) in acc.iter_mut().enumerate() {
                *a = accumulate::<FMA>(*a, xb, _mm512_loadu_ps(row.add(l * 16)));
            }
        }
        for (l, a) in acc.iter().enumerate() {
            _mm512_storeu_ps(y.as_mut_ptr().add(l * 16), *a);
        }
    }
}

/// Explicit AVX2/FMA panel kernels, gated behind the `simd` cargo feature.
///
/// The workspace denies `unsafe_code`; like the GEMM microkernel this
/// module is an audited exception — `std::arch` intrinsics are unsafe by
/// signature. Safety rests on runtime `avx2`+`fma` detection plus the
/// length checks in the safe wrapper.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod simd {
    use std::arch::x86_64::{
        _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    use std::sync::OnceLock;

    /// Runtime AVX2+FMA detection, cached after the first call.
    pub(super) fn available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE
            .get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }

    /// Safe wrapper: validates lengths, then dispatches to the
    /// lane-monomorphised target-feature kernel — 512-bit FMA (via the
    /// shared [`super::wide`] kernels with `FMA = true`) where the CPU has
    /// AVX-512F, 256-bit FMA otherwise.
    pub(super) fn panel<const W: usize>(x: &[f32], panel: &[f32], y: &mut [f32]) {
        debug_assert!(available());
        if W >= 16 && super::wide::available() {
            super::wide::panel::<W, true>(x, panel, y);
            return;
        }
        assert!(
            panel.len() >= x.len() * W,
            "packed panel shorter than k rows"
        );
        assert_eq!(y.len(), W, "panel output width mismatch");
        // SAFETY: `available()` gates on runtime avx2+fma support; the
        // asserts above guarantee every `k`-indexed panel load and every
        // 8-float output store below stays in bounds.
        unsafe {
            match W {
                64 => panel_fma::<8>(x, panel, y),
                32 => panel_fma::<4>(x, panel, y),
                16 => panel_fma::<2>(x, panel, y),
                8 => panel_fma::<1>(x, panel, y),
                _ => unreachable!("unsupported panel width {W}"),
            }
        }
    }

    /// `L` 256-bit accumulators (8·L panel columns) held in registers
    /// across the whole `k` loop: broadcast `x[k]`, one FMA per lane, one
    /// store per lane at the end.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn panel_fma<const L: usize>(x: &[f32], panel: &[f32], y: &mut [f32]) {
        let p = panel.as_ptr();
        let mut acc = [_mm256_setzero_ps(); L];
        for (kk, &xv) in x.iter().enumerate() {
            let xb = _mm256_set1_ps(xv);
            let row = p.add(kk * L * 8);
            for (l, a) in acc.iter_mut().enumerate() {
                *a = _mm256_fmadd_ps(xb, _mm256_loadu_ps(row.add(l * 8)), *a);
            }
        }
        for (l, a) in acc.iter().enumerate() {
            _mm256_storeu_ps(y.as_mut_ptr().add(l * 8), *a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, cols: usize, seed: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            ((i * 31 + j * 17 + seed * 13 + 7) % 97) as f32 / 48.5 - 1.0
        })
    }

    #[test]
    fn panel_decomposition_covers_all_columns() {
        for n in [1, 7, 8, 9, 15, 16, 31, 33, 63, 64, 65, 127, 128, 384] {
            let w = dense(3, n, n);
            let packed = PackedGemvWeights::pack(&w);
            assert_eq!(packed.cols(), n);
            let mut covered = vec![false; n];
            for p in &packed.panels {
                for c in p.col..p.col + p.width {
                    assert!(!covered[c], "column {c} packed twice (n={n})");
                    covered[c] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "columns uncovered at n={n}");
        }
    }

    #[test]
    fn gemv_matches_matmul_on_the_paper_shape() {
        let x = dense(1, 128, 0);
        let w = dense(128, 128, 1);
        let mut want = Matrix::zeros(1, 128);
        x.matmul_into(&w, &mut want);
        let packed = PackedGemvWeights::pack(&w);
        let mut y = vec![0.0f32; 128];
        packed.gemv_into(x.row(0), &mut y);
        let diff = y
            .iter()
            .zip(want.row(0))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        #[cfg(not(feature = "simd"))]
        assert_eq!(
            diff, 0.0,
            "scalar packed gemv must be bit-identical to mm_into"
        );
        #[cfg(feature = "simd")]
        assert!(diff < 1e-4, "simd packed gemv drifted: {diff}");
    }

    #[test]
    fn empty_operands_are_harmless() {
        let w = Matrix::zeros(0, 0);
        let packed = PackedGemvWeights::pack(&w);
        let mut y: Vec<f32> = Vec::new();
        packed.gemv_into(&[], &mut y);
        assert_eq!(packed.rows(), 0);
        assert_eq!(packed.cols(), 0);
    }

    #[test]
    #[should_panic(expected = "equal row counts")]
    fn concat_rejects_ragged_heights() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(2, 4);
        let _ = PackedGemvWeights::pack_concat(&[&a, &b]);
    }
}
