//! Packed, cache-blocked GEMM with an 8×8 register-tiled microkernel.
//!
//! The unblocked kernels in [`unblocked`] are fine for the vector-matrix
//! shapes the inference hot path runs (`1×D · D×H`), but the large square
//! shapes of QBN training (`128×128 · 128×128` and up) are memory-layout
//! bound: the `ikj` axpy loop re-streams the whole `B` matrix and the output
//! row through L1 for every row of `A`. This module implements the standard
//! GotoBLAS-style decomposition instead:
//!
//! - `B` is packed into `KC × NC` panels of contiguous `NR`-wide column
//!   strips, `A` into `MC × KC` panels of `MR`-tall row strips, so the
//!   microkernel streams both operands linearly;
//! - an `MR × NR = 8×8` register-tiled microkernel keeps the 64 output
//!   accumulators in registers across the whole `KC` depth, turning the
//!   inner loop into 8 independent 8-wide FMA chains with **zero** loads or
//!   stores of `C`;
//! - panel buffers live in a reusable [`PackBuffers`] scratch (a
//!   thread-local instance backs the `Matrix::matmul*` entry points, so the
//!   steady state allocates nothing).
//!
//! All three orientations used by reverse-mode autodiff (`A·B`, `Aᵀ·B`,
//! `A·Bᵀ`) route through the same driver; only the packing routines differ.
//!
//! # Numerical contract
//!
//! For every output element the blocked path adds products in ascending-`k`
//! order, one `mul`+`add` per product, starting from the existing value of
//! `C` — exactly the fold the unblocked `A·B` / `Aᵀ·B` kernels and the
//! naïve [`reference`] kernels perform. The default (scalar) build is
//! therefore **bit-identical** to those paths for any tile/panel geometry;
//! `tests/gemm_equivalence.rs` pins this across odd and rectangular shapes.
//! The one historical exception is the unblocked `A·Bᵀ` kernel, whose
//! eight-lane dot-product reduction tree rounds differently; the blocked
//! `A·Bᵀ` path matches the ascending-`k` reference instead.
//!
//! With the `simd` cargo feature the microkernel uses AVX2/FMA intrinsics
//! when the CPU supports them. Fused multiply-add rounds once instead of
//! twice, so the `simd` build is *not* bit-equal to the scalar build (it is
//! slightly more accurate); it is still deterministic for a given binary,
//! and the scalar fallback (older CPUs, other architectures) remains
//! bit-equal to the unblocked kernels.

use crate::matrix::Matrix;
use std::cell::RefCell;

/// Microkernel tile height (rows of `C` kept in registers).
pub const MR: usize = 8;
/// Microkernel tile width (columns of `C` kept in registers).
pub const NR: usize = 8;
/// Rows of `A` per packed panel (panel size `MC × KC` ≈ 64 KiB, L2-resident).
const MC: usize = 64;
/// Shared depth per packed panel.
const KC: usize = 256;
/// Columns of `B` per packed panel (panel size `KC × NC` ≈ 256 KiB).
const NC: usize = 256;

/// Minimum multiply count (`m·n·k`) before packing pays for itself; below
/// this the unblocked kernels win on packing overhead. Tuned on the
/// `BENCH_*.json` trajectory machine; see PERF.md.
pub const BLOCK_CUTOFF_FLOPS: usize = 1 << 16;

/// Minimum output rows before the blocked path is competitive: packing `B`
/// costs one pass over the panel, amortised across row strips, so row-thin
/// products (measured: `8×128 · 128×128` is ~1.9× slower blocked) stay on
/// the unblocked kernels. From two strips up the packed path wins.
pub const BLOCK_MIN_ROWS: usize = 2 * MR;

/// Whether the blocked path is used for an `m×k · k×n` product.
#[inline]
pub fn should_block(m: usize, n: usize, k: usize) -> bool {
    m >= BLOCK_MIN_ROWS
        && n >= NR
        && k >= 8
        && m.saturating_mul(n).saturating_mul(k) >= BLOCK_CUTOFF_FLOPS
}

/// Reusable packing scratch for the blocked GEMM.
///
/// Holds the packed `A` and `B` panels; reusing one instance across calls
/// (as the thread-local behind `Matrix::matmul*` does) makes the blocked
/// path allocation-free in the steady state.
#[derive(Default)]
pub struct PackBuffers {
    a: Vec<f32>,
    b: Vec<f32>,
}

impl PackBuffers {
    /// Creates empty buffers; they grow to panel size on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static THREAD_PACK: RefCell<PackBuffers> = RefCell::new(PackBuffers::new());
}

/// Runs `f` with the calling thread's shared [`PackBuffers`].
pub fn with_thread_pack<R>(f: impl FnOnce(&mut PackBuffers) -> R) -> R {
    THREAD_PACK.with(|p| f(&mut p.borrow_mut()))
}

/// GEMM orientation: which operand is logically transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Orient {
    /// `C += A · B`.
    Nn,
    /// `C += Aᵀ · B` (weight gradients).
    Tn,
    /// `C += A · Bᵀ` (input gradients).
    Nt,
}

impl Orient {
    /// `(m, n, k)` of the logical product for stored operand shapes.
    fn dims(self, a: &Matrix, b: &Matrix) -> (usize, usize, usize) {
        match self {
            Orient::Nn => (a.rows(), b.cols(), a.cols()),
            Orient::Tn => (a.cols(), b.cols(), a.rows()),
            Orient::Nt => (a.rows(), b.rows(), a.cols()),
        }
    }
}

/// The single blocked/unblocked dispatch point for every orientation and
/// entry style: `packs: None` draws the thread-local buffers (and only
/// touches TLS when actually blocking), `Some` uses caller-owned scratch.
/// Keeping one site means a cutoff-policy retune cannot leave the two
/// entry styles on different policies.
#[inline]
fn dispatch(
    orient: Orient,
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    packs: Option<&mut PackBuffers>,
) {
    let (m, n, k) = orient.dims(a, b);
    if should_block(m, n, k) {
        match packs {
            Some(p) => gemm_blocked(orient, a, b, out, p),
            None => with_thread_pack(|p| gemm_blocked(orient, a, b, out, p)),
        }
    } else {
        match orient {
            Orient::Nn => unblocked::nn_acc(a, b, out),
            Orient::Tn => unblocked::tn_acc(a, b, out),
            Orient::Nt => unblocked::nt_acc(a, b, out),
        }
    }
}

/// `out += self · other` with automatic blocked/unblocked dispatch.
#[inline]
pub(crate) fn auto_nn(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    dispatch(Orient::Nn, a, b, out, None);
}

/// `out += selfᵀ · other` with automatic blocked/unblocked dispatch.
#[inline]
pub(crate) fn auto_tn(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    dispatch(Orient::Tn, a, b, out, None);
}

/// `out += self · otherᵀ` with automatic blocked/unblocked dispatch.
#[inline]
pub(crate) fn auto_nt(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    dispatch(Orient::Nt, a, b, out, None);
}

/// [`auto_nn`] with caller-owned packing scratch.
#[inline]
pub(crate) fn auto_nn_with(a: &Matrix, b: &Matrix, out: &mut Matrix, packs: &mut PackBuffers) {
    dispatch(Orient::Nn, a, b, out, Some(packs));
}

/// [`auto_tn`] with caller-owned packing scratch.
#[inline]
pub(crate) fn auto_tn_with(a: &Matrix, b: &Matrix, out: &mut Matrix, packs: &mut PackBuffers) {
    dispatch(Orient::Tn, a, b, out, Some(packs));
}

/// [`auto_nt`] with caller-owned packing scratch.
#[inline]
pub(crate) fn auto_nt_with(a: &Matrix, b: &Matrix, out: &mut Matrix, packs: &mut PackBuffers) {
    dispatch(Orient::Nt, a, b, out, Some(packs));
}

/// `out += a · b` through the packed/blocked path, regardless of size.
pub fn blocked_nn(a: &Matrix, b: &Matrix, out: &mut Matrix, packs: &mut PackBuffers) {
    gemm_blocked(Orient::Nn, a, b, out, packs);
}

/// `out += aᵀ · b` through the packed/blocked path, regardless of size.
pub fn blocked_tn(a: &Matrix, b: &Matrix, out: &mut Matrix, packs: &mut PackBuffers) {
    gemm_blocked(Orient::Tn, a, b, out, packs);
}

/// `out += a · bᵀ` through the packed/blocked path, regardless of size.
pub fn blocked_nt(a: &Matrix, b: &Matrix, out: &mut Matrix, packs: &mut PackBuffers) {
    gemm_blocked(Orient::Nt, a, b, out, packs);
}

/// The five-loop blocked driver (GotoBLAS decomposition): `NC` column
/// panels × `KC` depth panels × `MC` row panels, then the packed macro
/// kernel over `NR`/`MR` register tiles.
///
/// Depth panels are visited in ascending `k` order and the microkernel
/// folds each panel in ascending `k` from the loaded `C` value, so the
/// per-element summation order is independent of the panel geometry — this
/// is what makes the blocked path bit-equal to the unblocked fold.
fn gemm_blocked(orient: Orient, a: &Matrix, b: &Matrix, out: &mut Matrix, packs: &mut PackBuffers) {
    let (m, n, k) = orient.dims(a, b);
    debug_assert_eq!(out.shape(), (m, n), "blocked gemm output shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(orient, b, pc, kc, jc, nc, &mut packs.b);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(orient, a, ic, mc, pc, kc, &mut packs.a);
                macro_kernel(&packs.a, &packs.b, mc, nc, kc, ic, jc, out);
            }
        }
    }
}

/// Packs an `mc × kc` panel of the logical `A` operand into `MR`-tall
/// strips: `strip[k·MR + r] = A'[ic+ir+r, pc+k]`, zero-padded to full
/// strips so the microkernel never branches on the row count.
fn pack_a(
    orient: Orient,
    a: &Matrix,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    buf: &mut Vec<f32>,
) {
    let strips = mc.div_ceil(MR);
    buf.clear();
    buf.resize(strips * MR * kc, 0.0);
    match orient {
        // A' = A: rows of the panel are rows of `a`; reads stride `a.cols()`.
        Orient::Nn | Orient::Nt => {
            for (s, ir) in (0..mc).step_by(MR).enumerate() {
                let strip = &mut buf[s * MR * kc..(s + 1) * MR * kc];
                for r in 0..MR.min(mc - ir) {
                    let row = &a.row(ic + ir + r)[pc..pc + kc];
                    for (k, &v) in row.iter().enumerate() {
                        strip[k * MR + r] = v;
                    }
                }
            }
        }
        // A' = Aᵀ: `A'[i, k] = a[k, i]`, so each depth step copies a
        // contiguous run of `a`'s row `pc + k`.
        Orient::Tn => {
            for (s, ir) in (0..mc).step_by(MR).enumerate() {
                let strip = &mut buf[s * MR * kc..(s + 1) * MR * kc];
                let cols = MR.min(mc - ir);
                for k in 0..kc {
                    let src = &a.row(pc + k)[ic + ir..ic + ir + cols];
                    strip[k * MR..k * MR + cols].copy_from_slice(src);
                }
            }
        }
    }
}

/// Packs a `kc × nc` panel of the logical `B` operand into `NR`-wide
/// strips: `strip[k·NR + j] = B'[pc+k, jc+jr+j]`, zero-padded like
/// [`pack_a`].
fn pack_b(
    orient: Orient,
    b: &Matrix,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    buf: &mut Vec<f32>,
) {
    let strips = nc.div_ceil(NR);
    buf.clear();
    buf.resize(strips * NR * kc, 0.0);
    match orient {
        // B' = B: each depth step is a contiguous run of `b`'s row `pc+k`.
        Orient::Nn | Orient::Tn => {
            for k in 0..kc {
                let row = &b.row(pc + k)[jc..jc + nc];
                for (s, chunk) in row.chunks(NR).enumerate() {
                    buf[s * NR * kc + k * NR..][..chunk.len()].copy_from_slice(chunk);
                }
            }
        }
        // B' = Bᵀ: `B'[k, j] = b[j, k]`, so each panel column is a
        // contiguous run of a row of `b`, scattered with stride `NR`.
        Orient::Nt => {
            for (s, jr) in (0..nc).step_by(NR).enumerate() {
                let strip = &mut buf[s * NR * kc..(s + 1) * NR * kc];
                for j in 0..NR.min(nc - jr) {
                    let src = &b.row(jc + jr + j)[pc..pc + kc];
                    for (k, &v) in src.iter().enumerate() {
                        strip[k * NR + j] = v;
                    }
                }
            }
        }
    }
}

/// Runs the register-tiled microkernel over every `MR × NR` tile of an
/// `mc × nc` block of `C`, loading each tile's live region into the
/// accumulator, folding the packed panels, and storing it back. Tiles on
/// the right/bottom edge simply ignore the zero-padded lanes.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    pa: &[f32],
    pb: &[f32],
    mc: usize,
    nc: usize,
    kc: usize,
    ic: usize,
    jc: usize,
    out: &mut Matrix,
) {
    for (bs, jr) in (0..nc).step_by(NR).enumerate() {
        let nr = NR.min(nc - jr);
        let b_strip = &pb[bs * NR * kc..(bs + 1) * NR * kc];
        for (asx, ir) in (0..mc).step_by(MR).enumerate() {
            let mr = MR.min(mc - ir);
            let a_strip = &pa[asx * MR * kc..(asx + 1) * MR * kc];
            let mut acc = [[0.0f32; NR]; MR];
            for (r, acc_row) in acc.iter_mut().enumerate().take(mr) {
                let src = &out.row(ic + ir + r)[jc + jr..jc + jr + nr];
                acc_row[..nr].copy_from_slice(src);
            }
            kernel_8x8(kc, a_strip, b_strip, &mut acc);
            for (r, acc_row) in acc.iter().enumerate().take(mr) {
                let dst = &mut out.row_mut(ic + ir + r)[jc + jr..jc + jr + nr];
                dst.copy_from_slice(&acc_row[..nr]);
            }
        }
    }
}

/// Microkernel entry: AVX2/FMA when the `simd` feature is on and the CPU
/// supports it, scalar (autovectorised, mul+add) otherwise.
#[inline]
fn kernel_8x8(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::available() {
        simd::kernel_8x8(kc, a, b, acc);
        return;
    }
    kernel_8x8_scalar(kc, a, b, acc);
}

/// Scalar 8×8 microkernel: 64 register accumulators, one broadcast-FMA-
/// shaped statement per (row, lane). The `chunks_exact` pair removes all
/// bounds checks; the compiler keeps `acc` in 8 vector registers and emits
/// an 8-wide mul+add per row per depth step.
#[inline]
fn kernel_8x8_scalar(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    let a = &a[..kc * MR];
    let b = &b[..kc * NR];
    for (ac, bc) in a.chunks_exact(MR).zip(b.chunks_exact(NR)) {
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let ar = ac[r];
            for (j, c) in acc_row.iter_mut().enumerate() {
                *c += ar * bc[j];
            }
        }
    }
}

/// Explicit AVX2/FMA microkernel, gated behind the `simd` cargo feature.
///
/// The workspace denies `unsafe_code`; this module is the single, audited
/// exception — `std::arch` intrinsics are unsafe by signature. Safety rests
/// on two invariants, both checked before the unsafe call: the CPU reports
/// `avx2`+`fma` at runtime, and the packed panels hold at least `kc` full
/// strips.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod simd {
    use super::{MR, NR};
    use std::arch::x86_64::{
        __m256, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };
    use std::sync::OnceLock;

    /// Runtime AVX2+FMA detection, cached after the first call.
    pub(super) fn available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE
            .get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }

    /// Safe wrapper: validates panel lengths, then dispatches to the
    /// target-feature kernel.
    pub(super) fn kernel_8x8(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
        assert!(a.len() >= kc * MR, "packed A panel shorter than kc strips");
        assert!(b.len() >= kc * NR, "packed B panel shorter than kc strips");
        debug_assert!(available());
        // SAFETY: `available()` gates on runtime avx2+fma support, and the
        // asserts above guarantee every `k`-indexed load below is in
        // bounds. `acc` rows are 8 floats, matching the 256-bit stores.
        unsafe { kernel_8x8_fma(kc, a.as_ptr(), b.as_ptr(), acc) }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn kernel_8x8_fma(kc: usize, a: *const f32, b: *const f32, acc: &mut [[f32; NR]; MR]) {
        let mut c: [__m256; MR] = [
            _mm256_loadu_ps(acc[0].as_ptr()),
            _mm256_loadu_ps(acc[1].as_ptr()),
            _mm256_loadu_ps(acc[2].as_ptr()),
            _mm256_loadu_ps(acc[3].as_ptr()),
            _mm256_loadu_ps(acc[4].as_ptr()),
            _mm256_loadu_ps(acc[5].as_ptr()),
            _mm256_loadu_ps(acc[6].as_ptr()),
            _mm256_loadu_ps(acc[7].as_ptr()),
        ];
        for k in 0..kc {
            let bv = _mm256_loadu_ps(b.add(k * NR));
            for (r, cr) in c.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*a.add(k * MR + r));
                *cr = _mm256_fmadd_ps(av, bv, *cr);
            }
        }
        for (r, cr) in c.iter().enumerate() {
            _mm256_storeu_ps(acc[r].as_mut_ptr(), *cr);
        }
    }
}

/// The unblocked kernels: branch-free, eight-wide-unrolled loops shaped for
/// the autovectoriser. These remain the dispatch target below
/// [`BLOCK_CUTOFF_FLOPS`], where packing overhead would dominate — chiefly
/// the `1×D` vector-matrix shapes of single-decision inference.
pub mod unblocked {
    use crate::matrix::Matrix;

    /// `out += a · b` with the cache-friendly `ikj` loop order.
    ///
    /// The inner `j` loop is branch-free and unrolled eight-wide: the hot
    /// path's inputs (activations, gradients) are dense, so a per-element
    /// zero test costs a mispredicted branch per multiply and blocks
    /// autovectorisation.
    #[inline]
    pub fn nn_acc(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        let n = b.cols();
        for i in 0..a.rows() {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for (k, &av) in a_row.iter().enumerate() {
                axpy_row(out_row, av, &b.as_slice()[k * n..(k + 1) * n]);
            }
        }
    }

    /// `out += aᵀ · b`.
    #[inline]
    pub fn tn_acc(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        let n = b.cols();
        for k in 0..a.rows() {
            let a_row = a.row(k);
            let b_row = &b.as_slice()[k * n..(k + 1) * n];
            for (i, &av) in a_row.iter().enumerate() {
                axpy_row(out.row_mut(i), av, b_row);
            }
        }
    }

    /// `out += a · bᵀ`.
    ///
    /// Note: the eight-lane dot-product reduction rounds differently from
    /// the ascending-`k` fold the blocked path and [`super::reference`]
    /// use; see the module docs.
    #[inline]
    pub fn nt_acc(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        for i in 0..a.rows() {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o += dot_unrolled(a_row, b.row(j));
            }
        }
    }

    /// `out[j] += a * b[j]`, unrolled eight-wide over fixed-size array
    /// chunks so the compiler emits branch-free vector code (no zero-skip
    /// test, no bounds checks inside the loop).
    #[inline]
    pub(crate) fn axpy_row(out: &mut [f32], a: f32, b: &[f32]) {
        debug_assert_eq!(out.len(), b.len());
        let (o_main, o_tail) = out.as_chunks_mut::<8>();
        let (b_main, b_tail) = b.as_chunks::<8>();
        for (oc, bc) in o_main.iter_mut().zip(b_main) {
            for j in 0..8 {
                oc[j] += a * bc[j];
            }
        }
        for (o, &bv) in o_tail.iter_mut().zip(b_tail) {
            *o += a * bv;
        }
    }

    /// Dot product with eight independent accumulator lanes (breaks the add
    /// latency chain; the compiler turns the lanes into vector FMAs).
    #[inline]
    pub(crate) fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let (a_main, a_tail) = a.as_chunks::<8>();
        let (b_main, b_tail) = b.as_chunks::<8>();
        let mut acc = [0.0f32; 8];
        for (ac, bc) in a_main.iter().zip(b_main) {
            for j in 0..8 {
                acc[j] += ac[j] * bc[j];
            }
        }
        let mut tail = 0.0;
        for (&av, &bv) in a_tail.iter().zip(b_tail) {
            tail += av * bv;
        }
        let halves = [
            acc[0] + acc[4],
            acc[1] + acc[5],
            acc[2] + acc[6],
            acc[3] + acc[7],
        ];
        (halves[0] + halves[1]) + (halves[2] + halves[3]) + tail
    }
}

/// Naïve triple-loop kernels that fold products in ascending-`k` order —
/// the numerical ground truth the blocked and unblocked (`A·B`, `Aᵀ·B`)
/// paths are pinned against, bit for bit. Test/verification use only.
pub mod reference {
    use crate::matrix::Matrix;

    /// `out += a · b`, ascending-`k` fold per element.
    pub fn nn_acc(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut c = out[(i, j)];
                for k in 0..a.cols() {
                    c += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = c;
            }
        }
    }

    /// `out += aᵀ · b`, ascending-`k` fold per element.
    pub fn tn_acc(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        for i in 0..a.cols() {
            for j in 0..b.cols() {
                let mut c = out[(i, j)];
                for k in 0..a.rows() {
                    c += a[(k, i)] * b[(k, j)];
                }
                out[(i, j)] = c;
            }
        }
    }

    /// `out += a · bᵀ`, ascending-`k` fold per element.
    #[inline]
    pub fn nt_acc(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut c = out[(i, j)];
                for k in 0..a.cols() {
                    c += a[(i, k)] * b[(j, k)];
                }
                out[(i, j)] = c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, cols: usize, seed: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            ((i * 31 + j * 17 + seed * 13 + 7) % 97) as f32 / 48.5 - 1.0
        })
    }

    /// Bit-exact on the scalar build; tolerance under `simd`, where FMA
    /// legitimately rounds once per product instead of twice.
    fn assert_matches_reference(blocked: &Matrix, reference: &Matrix) {
        let diff = blocked.max_abs_diff(reference);
        #[cfg(not(feature = "simd"))]
        assert_eq!(diff, 0.0, "scalar blocked path must be bit-identical");
        #[cfg(feature = "simd")]
        assert!(diff < 1e-4, "simd blocked path drifted: {diff}");
    }

    #[test]
    fn blocked_nn_crosses_every_panel_boundary() {
        // m crosses MC, k crosses KC, n crosses NC, none a tile multiple.
        let a = dense(MC + 5, KC + 9, 1);
        let b = dense(KC + 9, NC + 3, 2);
        let mut blocked = Matrix::zeros(a.rows(), b.cols());
        let mut reference = blocked.clone();
        with_thread_pack(|p| blocked_nn(&a, &b, &mut blocked, p));
        reference::nn_acc(&a, &b, &mut reference);
        assert_matches_reference(&blocked, &reference);
    }

    #[test]
    fn blocked_accumulates_into_existing_output() {
        let a = dense(16, 24, 3);
        let b = dense(24, 16, 4);
        let mut blocked = dense(16, 16, 5);
        let mut reference = blocked.clone();
        with_thread_pack(|p| blocked_nn(&a, &b, &mut blocked, p));
        reference::nn_acc(&a, &b, &mut reference);
        assert_matches_reference(&blocked, &reference);
    }

    #[test]
    fn cutoff_keeps_vector_matrix_on_the_unblocked_path() {
        assert!(!should_block(1, 128, 128), "GEMV must stay unblocked");
        assert!(should_block(128, 128, 128), "QBN training shape must block");
    }
}
