//! Weight initialisation schemes.

use rand::Rng as _;
use rand_distr_shim::sample_standard_normal;

use crate::{Matrix, Rng};

/// Supported weight-initialisation schemes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Initializer {
    /// All zeros (used for biases).
    Zeros,
    /// Constant value.
    Constant(f32),
    /// Uniform in `[-limit, limit]`.
    Uniform(f32),
    /// Xavier/Glorot uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Xavier/Glorot normal: `std = sqrt(2 / (fan_in + fan_out))`.
    XavierNormal,
}

impl Initializer {
    /// Materialises a `rows × cols` matrix (`fan_in = rows`, `fan_out = cols`).
    pub fn init(self, rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
        match self {
            Initializer::Zeros => Matrix::zeros(rows, cols),
            Initializer::Constant(v) => Matrix::filled(rows, cols, v),
            Initializer::Uniform(limit) => {
                Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
            }
            Initializer::XavierUniform => {
                let limit = (6.0 / (rows + cols) as f32).sqrt();
                Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
            }
            Initializer::XavierNormal => {
                let std = (2.0 / (rows + cols) as f32).sqrt();
                Matrix::from_fn(rows, cols, |_, _| std * sample_standard_normal(rng))
            }
        }
    }
}

/// Xavier/Glorot-uniform initialised `rows × cols` matrix.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
    Initializer::XavierUniform.init(rows, cols, rng)
}

/// Xavier/Glorot-normal initialised `rows × cols` matrix.
pub fn xavier_normal(rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
    Initializer::XavierNormal.init(rows, cols, rng)
}

/// A tiny standard-normal sampler so we do not need the `rand_distr` crate.
mod rand_distr_shim {
    use rand::Rng as _;

    /// Samples `N(0, 1)` via the Box–Muller transform.
    pub fn sample_standard_normal(rng: &mut crate::Rng) -> f32 {
        // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
        let u1: f32 = 1.0 - rng.gen::<f32>();
        let u2: f32 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn zeros_and_constant_fill_as_expected() {
        let mut rng = seeded_rng(0);
        assert!(Initializer::Zeros
            .init(2, 2, &mut rng)
            .as_slice()
            .iter()
            .all(|&x| x == 0.0));
        assert!(Initializer::Constant(0.5)
            .init(2, 2, &mut rng)
            .as_slice()
            .iter()
            .all(|&x| x == 0.5));
    }

    #[test]
    fn xavier_uniform_respects_limit() {
        let mut rng = seeded_rng(7);
        let m = xavier_uniform(64, 64, &mut rng);
        let limit = (6.0_f32 / 128.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit + 1e-6));
    }

    #[test]
    fn xavier_normal_has_reasonable_spread() {
        let mut rng = seeded_rng(42);
        let m = xavier_normal(128, 128, &mut rng);
        let std = (2.0_f32 / 256.0).sqrt();
        let sample_std = crate::std_dev(m.as_slice());
        assert!(
            (sample_std - std).abs() < std * 0.2,
            "sample std {sample_std} far from target {std}"
        );
    }

    #[test]
    fn same_seed_gives_same_weights() {
        let a = xavier_uniform(4, 4, &mut seeded_rng(1));
        let b = xavier_uniform(4, 4, &mut seeded_rng(1));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_weights() {
        let a = xavier_uniform(4, 4, &mut seeded_rng(1));
        let b = xavier_uniform(4, 4, &mut seeded_rng(2));
        assert_ne!(a, b);
    }
}
