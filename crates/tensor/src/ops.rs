//! Numerically stable soft(arg)max kernels.

/// Writes the softmax of `logits` into `out`.
///
/// Uses the max-subtraction trick for numerical stability, so arbitrarily
/// large logits do not overflow.
///
/// # Panics
/// Panics if `logits` is empty or the lengths differ.
pub fn softmax_row_into(logits: &[f32], out: &mut [f32]) {
    assert!(!logits.is_empty(), "softmax of an empty slice is undefined");
    assert_eq!(logits.len(), out.len(), "softmax output length mismatch");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut denom = 0.0;
    for (o, &x) in out.iter_mut().zip(logits) {
        let e = (x - max).exp();
        *o = e;
        denom += e;
    }
    for o in out.iter_mut() {
        *o /= denom;
    }
}

/// Returns the softmax of `logits` as a fresh vector.
pub fn softmax_row(logits: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; logits.len()];
    softmax_row_into(logits, &mut out);
    out
}

/// Returns the log-softmax of `logits` as a fresh vector.
///
/// Computed as `x - max - ln(Σ exp(x - max))`, which is stable for both large
/// positive and large negative logits.
pub fn log_softmax_row(logits: &[f32]) -> Vec<f32> {
    assert!(
        !logits.is_empty(),
        "log-softmax of an empty slice is undefined"
    );
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_denom = logits.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
    logits.iter().map(|&x| x - max - log_denom).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax_row(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax_row(&[1.0, 2.0, 3.0]);
        let b = softmax_row(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_huge_logits_without_overflow() {
        let p = softmax_row(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let logits = [0.3, -1.2, 2.5, 0.0];
        let ls = log_softmax_row(&logits);
        let p = softmax_row(&logits);
        for (l, q) in ls.iter().zip(&p) {
            assert!((l - q.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn uniform_logits_give_uniform_distribution() {
        let p = softmax_row(&[0.0; 7]);
        for x in p {
            assert!((x - 1.0 / 7.0).abs() < 1e-6);
        }
    }
}
