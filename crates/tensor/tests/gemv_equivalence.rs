//! Numerical pins for the packed GEMV inference kernels.
//!
//! The packed layout must be a pure layout optimisation: on the default
//! build — including its runtime AVX-512 mul+add path — `gemv_into` is
//! **bit-identical** to `Matrix::matmul_into` on `1×K · K×N` for every
//! shape, aligned or odd, and for any concatenation of sources. Under
//! `--features simd` the kernels fuse multiply-add and the same properties
//! hold with a tolerance (matching the blocked-GEMM contract).

use lahd_tensor::{Matrix, PackedGemvWeights};
use proptest::prelude::*;

fn dense(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let x = (i * 131 + j * 31 + seed as usize * 17 + 3) % 251;
        x as f32 / 125.5 - 1.0
    })
}

/// Bit-exact on the default build, tolerance under `simd` (FMA rounding).
fn assert_matches(label: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{label}: length mismatch");
    let diff = got
        .iter()
        .zip(want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    #[cfg(not(feature = "simd"))]
    assert_eq!(
        diff, 0.0,
        "{label}: packed gemv must be bit-identical to mm_into"
    );
    #[cfg(feature = "simd")]
    assert!(diff < 1e-3, "{label}: simd packed gemv drifted by {diff}");
}

fn check_shape(k: usize, n: usize, seed: u64) {
    let x = dense(1, k, seed);
    let w = dense(k, n, seed + 1);
    let mut want = Matrix::zeros(1, n);
    x.matmul_into(&w, &mut want);
    let packed = PackedGemvWeights::pack(&w);
    assert_eq!((packed.rows(), packed.cols()), (k, n));
    let mut y = vec![f32::NAN; n]; // gemv_into must overwrite
    packed.gemv_into(x.row(0), &mut y);
    assert_matches(&format!("1x{k} · {k}x{n}"), &y, want.row(0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes spanning sub-panel, straddling, and multi-panel
    /// widths with odd remainders in both dimensions.
    #[test]
    fn packed_gemv_matches_mm_into(
        k in 1usize..200,
        n in 1usize..200,
        seed in 0u64..1000,
    ) {
        check_shape(k, n, seed);
    }
}

/// Deterministic shapes: every monomorphised panel width (64/32/16/8 and
/// each sub-8 tail), the paper's inference shapes, and panel-boundary
/// straddlers.
#[test]
fn panel_width_edge_shapes_match() {
    for &n in &[
        1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129, 384,
    ] {
        for &k in &[1, 7, 35, 128, 129] {
            check_shape(k, n, (n * 1000 + k) as u64);
        }
    }
}

/// Packing `[A | B | C]` side by side must equal packing each matrix alone
/// — bit-for-bit on every build, since concatenated sources keep their own
/// panels and therefore their exact per-column arithmetic.
#[test]
fn concat_pack_matches_individual_packs() {
    let k = 57;
    let sources = [dense(k, 128, 1), dense(k, 33, 2), dense(k, 7, 3)];
    let x = dense(1, k, 4);
    let concat = PackedGemvWeights::pack_concat(&[&sources[0], &sources[1], &sources[2]]);
    let mut fused = vec![0.0f32; 168];
    concat.gemv_into(x.row(0), &mut fused);

    let mut offset = 0;
    for (i, w) in sources.iter().enumerate() {
        let single = PackedGemvWeights::pack(w);
        let mut y = vec![0.0f32; w.cols()];
        single.gemv_into(x.row(0), &mut y);
        assert_eq!(
            y,
            fused[offset..offset + w.cols()],
            "source {i}: concatenated pack changed the arithmetic"
        );
        offset += w.cols();
    }
}

/// Re-packing differently shaped weights into one buffer must not leak
/// state between packs.
#[test]
fn repack_reuse_is_stateless() {
    let mut packed = PackedGemvWeights::default();
    for (round, &(k, n)) in [(128usize, 128usize), (35, 384), (9, 5), (64, 200)]
        .iter()
        .enumerate()
    {
        let w = dense(k, n, round as u64);
        let x = dense(1, k, round as u64 + 10);
        packed.repack(&w);
        let mut warm = vec![0.0f32; n];
        packed.gemv_into(x.row(0), &mut warm);
        let mut cold = vec![0.0f32; n];
        PackedGemvWeights::pack(&w).gemv_into(x.row(0), &mut cold);
        assert_eq!(
            warm, cold,
            "round {round}: reused pack buffers changed the result"
        );
    }
}

/// The packed layout must agree with the ascending-`k` reference fold (the
/// ground truth the whole GEMM stack is pinned to), not just with the
/// unblocked kernel that happens to share it.
#[test]
fn packed_gemv_matches_reference_fold() {
    let k = 100;
    let n = 77;
    let x = dense(1, k, 11);
    let w = dense(k, n, 12);
    let mut reference = Matrix::zeros(1, n);
    lahd_tensor::gemm::reference::nn_acc(&x, &w, &mut reference);
    let mut y = vec![0.0f32; n];
    PackedGemvWeights::pack(&w).gemv_into(x.row(0), &mut y);
    assert_matches("reference fold", &y, reference.row(0));
}
