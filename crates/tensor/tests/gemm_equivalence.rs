//! Numerical pins for the packed/blocked GEMM.
//!
//! The blocked path must be a pure layout optimisation: on the default
//! (scalar) build it is **bit-identical** to the ascending-`k` reference
//! fold for every orientation and every shape — including odd, rectangular,
//! and non-multiple-of-tile dimensions — and therefore also bit-identical
//! to the unblocked `A·B` / `Aᵀ·B` kernels, which perform the same fold.
//! (The unblocked `A·Bᵀ` kernel uses an eight-lane dot-product reduction
//! tree, so it is pinned against the reference with a tolerance instead;
//! see the `gemm` module docs.)
//!
//! Under `--features simd` the microkernel fuses multiply-add, which rounds
//! once instead of twice; the same properties then hold with a tolerance.

use lahd_tensor::gemm::{self, PackBuffers};
use lahd_tensor::Matrix;
use proptest::prelude::*;

fn dense(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let x = (i * 131 + j * 31 + seed as usize * 17 + 3) % 251;
        x as f32 / 125.5 - 1.0
    })
}

/// Bit-exact on the scalar build, tolerance under `simd` (FMA rounding).
fn assert_matches(label: &str, got: &Matrix, want: &Matrix) {
    let diff = got.max_abs_diff(want);
    #[cfg(not(feature = "simd"))]
    assert_eq!(
        diff, 0.0,
        "{label}: scalar blocked path must be bit-identical"
    );
    #[cfg(feature = "simd")]
    assert!(diff < 1e-3, "{label}: simd path drifted by {diff}");
}

/// Runs all three orientations through blocked / unblocked / reference on
/// the same operands and cross-checks them.
fn check_all_orientations(m: usize, n: usize, k: usize, seed: u64) {
    let mut packs = PackBuffers::new();

    // A·B
    let a = dense(m, k, seed);
    let b = dense(k, n, seed + 1);
    let seed_out = dense(m, n, seed + 2); // accumulate into a non-zero C
    let mut blocked = seed_out.clone();
    let mut unblocked = seed_out.clone();
    let mut reference = seed_out.clone();
    gemm::blocked_nn(&a, &b, &mut blocked, &mut packs);
    gemm::unblocked::nn_acc(&a, &b, &mut unblocked);
    gemm::reference::nn_acc(&a, &b, &mut reference);
    assert_matches("nn blocked vs reference", &blocked, &reference);
    assert_eq!(
        unblocked.max_abs_diff(&reference),
        0.0,
        "nn unblocked kernel must share the reference fold"
    );

    // Aᵀ·B (A stored k×m)
    let at = dense(k, m, seed + 3);
    let mut blocked = seed_out.clone();
    let mut unblocked = seed_out.clone();
    let mut reference = seed_out.clone();
    gemm::blocked_tn(&at, &b, &mut blocked, &mut packs);
    gemm::unblocked::tn_acc(&at, &b, &mut unblocked);
    gemm::reference::tn_acc(&at, &b, &mut reference);
    assert_matches("tn blocked vs reference", &blocked, &reference);
    assert_eq!(
        unblocked.max_abs_diff(&reference),
        0.0,
        "tn unblocked kernel must share the reference fold"
    );

    // A·Bᵀ (B stored n×k)
    let bt = dense(n, k, seed + 4);
    let mut blocked = seed_out.clone();
    let mut unblocked = seed_out;
    let mut reference = blocked.clone();
    gemm::blocked_nt(&a, &bt, &mut blocked, &mut packs);
    gemm::unblocked::nt_acc(&a, &bt, &mut unblocked);
    gemm::reference::nt_acc(&a, &bt, &mut reference);
    assert_matches("nt blocked vs reference", &blocked, &reference);
    // The unblocked nt kernel's lane-split dot product rounds differently;
    // it is close, not bit-equal.
    let k_scale = (k as f32).max(1.0);
    assert!(
        unblocked.max_abs_diff(&reference) <= 1e-5 * k_scale,
        "nt unblocked kernel drifted beyond rounding noise"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random odd/rectangular shapes, including dimensions below one tile
    /// and ones that straddle tile boundaries.
    #[test]
    fn blocked_matches_unblocked_and_reference(
        m in 1usize..41,
        n in 1usize..41,
        k in 1usize..41,
        seed in 0u64..1000,
    ) {
        check_all_orientations(m, n, k, seed);
    }
}

/// Deterministic shapes chosen to cross every panel boundary (`MC`=64,
/// `KC`=`NC`=256) with non-multiple-of-tile remainders in each dimension.
#[test]
fn panel_boundary_shapes_match() {
    for &(m, n, k) in &[
        (1, 9, 300),
        (66, 259, 258),
        (8, 8, 8),
        (13, 7, 260),
        (70, 9, 17),
    ] {
        check_all_orientations(m, n, k, 99);
    }
}

/// The public `Matrix` entry points dispatch above the cutoff; the result
/// must match the reference fold no matter which path was taken.
#[test]
fn dispatching_entry_points_match_reference() {
    // Above the cutoff for all three orientations.
    let a = dense(128, 128, 7);
    let b = dense(128, 128, 8);
    let mut reference = Matrix::zeros(128, 128);
    gemm::reference::nn_acc(&a, &b, &mut reference);
    assert_matches("matmul dispatch", &a.matmul(&b), &reference);

    let mut reference_tn = Matrix::zeros(128, 128);
    gemm::reference::tn_acc(&a, &b, &mut reference_tn);
    assert_matches("matmul_tn dispatch", &a.matmul_tn(&b), &reference_tn);

    let mut reference_nt = Matrix::zeros(128, 128);
    gemm::reference::nt_acc(&a, &b, &mut reference_nt);
    assert_matches("matmul_nt dispatch", &a.matmul_nt(&b), &reference_nt);
}

/// Reusing one `PackBuffers` across differently shaped products must not
/// leak state between calls.
#[test]
fn pack_buffer_reuse_is_stateless() {
    let mut packs = PackBuffers::new();
    let shapes = [(40, 24, 33), (9, 40, 40), (33, 17, 26)];
    for (round, &(m, n, k)) in shapes.iter().enumerate() {
        let a = dense(m, k, round as u64);
        let b = dense(k, n, round as u64 + 10);
        let mut warm = Matrix::zeros(m, n);
        gemm::blocked_nn(&a, &b, &mut warm, &mut packs);
        let mut cold = Matrix::zeros(m, n);
        gemm::blocked_nn(&a, &b, &mut cold, &mut PackBuffers::new());
        assert_eq!(
            warm.max_abs_diff(&cold),
            0.0,
            "round {round}: reused buffers changed the result"
        );
    }
}

/// `_with` variants (caller-owned scratch) agree with the thread-local
/// entry points bit for bit.
#[test]
fn with_variants_match_default_entry_points() {
    let a = dense(96, 80, 1);
    let b = dense(80, 72, 2);
    let bt = dense(72, 80, 3);
    let at = dense(80, 96, 4);
    let mut packs = PackBuffers::new();

    let mut nn = Matrix::zeros(96, 72);
    a.matmul_acc_with(&b, &mut nn, &mut packs);
    assert_eq!(nn.max_abs_diff(&a.matmul(&b)), 0.0);

    let mut tn = Matrix::zeros(96, 72);
    at.matmul_tn_acc_with(&b, &mut tn, &mut packs);
    assert_eq!(tn.max_abs_diff(&at.matmul_tn(&b)), 0.0);

    let mut nt = Matrix::zeros(96, 72);
    a.matmul_nt_acc_with(&bt, &mut nt, &mut packs);
    assert_eq!(nt.max_abs_diff(&a.matmul_nt(&bt)), 0.0);
}
