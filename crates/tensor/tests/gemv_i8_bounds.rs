//! Accuracy pins for the quantized (i8) packed GEMV tier.
//!
//! Unlike the f32 pack, the i8 layout has no bit-identity contract — its
//! contract is a *bound*: round-to-nearest quantization caps the element
//! error at `0.5 · scale · Σ|x|` (see `lahd_tensor::gemv_i8`). These tests
//! pin that bound across random shapes/values, and pin the structural
//! properties (concat ≡ individual packs, repack statelessness) the fused
//! GRU path relies on.

use lahd_tensor::{Matrix, PackedGemvWeightsI8};
use proptest::prelude::*;

fn dense(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let x = (i * 131 + j * 31 + seed as usize * 17 + 3) % 251;
        x as f32 / 125.5 - 1.0
    })
}

/// The quantized product must stay within the a-priori quantization bound
/// of the f32 product (plus a sliver for the f32 fold noise both share).
fn check_shape(k: usize, n: usize, seed: u64, amplitude: f32) {
    let x = dense(1, k, seed);
    let mut w = dense(k, n, seed + 1);
    w.map_inplace(|v| v * amplitude);
    let mut want = Matrix::zeros(1, n);
    x.matmul_into(&w, &mut want);
    let packed = PackedGemvWeightsI8::pack(&w);
    assert_eq!((packed.rows(), packed.cols()), (k, n));
    let mut y = vec![f32::NAN; n]; // gemv_into must overwrite
    packed.gemv_into(x.row(0), &mut y);
    let bound = packed.error_bound(x.row(0)) * 1.001 + 1e-4 * amplitude.max(1.0);
    for (j, (got, wanted)) in y.iter().zip(want.row(0)).enumerate() {
        let diff = (got - wanted).abs();
        assert!(
            diff <= bound,
            "1x{k} · {k}x{n} col {j}: |{got} − {wanted}| = {diff} > bound {bound}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes spanning sub-panel, straddling, and multi-panel
    /// widths, with weight magnitudes from tiny to large (the scale is
    /// relative, so the bound must hold at every amplitude).
    #[test]
    fn quantized_gemv_respects_error_bound(
        k in 1usize..200,
        n in 1usize..200,
        seed in 0u64..1000,
        amp_log in -6i32..6,
    ) {
        check_shape(k, n, seed, 2.0f32.powi(amp_log));
    }
}

/// Deterministic shapes: every monomorphised panel width (64/32/16/8 and
/// each sub-8 tail), the paper's inference shapes, and panel-boundary
/// straddlers.
#[test]
fn panel_width_edge_shapes_respect_bound() {
    for &n in &[
        1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129, 384,
    ] {
        for &k in &[1, 7, 35, 128, 129] {
            check_shape(k, n, (n * 1000 + k) as u64, 1.0);
        }
    }
}

/// Packing `[A | B | C]` side by side must equal packing each matrix alone
/// — bit-for-bit on every build, since concatenated sources keep their own
/// panels (and scales) and therefore their exact per-column arithmetic.
#[test]
fn concat_pack_matches_individual_packs() {
    let k = 57;
    let sources = [dense(k, 128, 1), dense(k, 33, 2), dense(k, 7, 3)];
    let x = dense(1, k, 4);
    let concat = PackedGemvWeightsI8::pack_concat(&[&sources[0], &sources[1], &sources[2]]);
    let mut fused = vec![0.0f32; 168];
    concat.gemv_into(x.row(0), &mut fused);

    let mut offset = 0;
    for (i, w) in sources.iter().enumerate() {
        let single = PackedGemvWeightsI8::pack(w);
        let mut y = vec![0.0f32; w.cols()];
        single.gemv_into(x.row(0), &mut y);
        assert_eq!(
            y,
            fused[offset..offset + w.cols()],
            "source {i}: concatenated pack changed the arithmetic"
        );
        offset += w.cols();
    }
}

/// Re-quantizing differently shaped weights into one buffer must not leak
/// state (data, panels, or scales) between packs.
#[test]
fn repack_reuse_is_stateless() {
    let mut packed = PackedGemvWeightsI8::default();
    for (round, &(k, n)) in [(128usize, 128usize), (35, 384), (9, 5), (64, 200)]
        .iter()
        .enumerate()
    {
        let w = dense(k, n, round as u64);
        let x = dense(1, k, round as u64 + 10);
        packed.repack(&w);
        let mut warm = vec![0.0f32; n];
        packed.gemv_into(x.row(0), &mut warm);
        let mut cold = vec![0.0f32; n];
        PackedGemvWeightsI8::pack(&w).gemv_into(x.row(0), &mut cold);
        assert_eq!(
            warm, cold,
            "round {round}: reused pack buffers changed the result"
        );
    }
}
