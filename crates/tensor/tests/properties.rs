//! Property-based tests for the linear-algebra kernels.

use lahd_tensor::{log_softmax_row, percentile, softmax_row, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with small finite entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn matmul_distributes_over_addition(
        a in matrix(3, 4),
        b in matrix(4, 2),
        c in matrix(4, 2),
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn matmul_is_associative(
        a in matrix(2, 3),
        b in matrix(3, 2),
        c in matrix(2, 4),
    ) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }

    #[test]
    fn matmul_tn_agrees_with_naive_transpose(a in matrix(4, 3), b in matrix(4, 5)) {
        let fast = a.matmul_tn(&b);
        let naive = a.transpose().matmul(&b);
        prop_assert!(fast.max_abs_diff(&naive) < 1e-4);
    }

    #[test]
    fn matmul_nt_agrees_with_naive_transpose(a in matrix(3, 4), b in matrix(5, 4)) {
        let fast = a.matmul_nt(&b);
        let naive = a.matmul(&b.transpose());
        prop_assert!(fast.max_abs_diff(&naive) < 1e-4);
    }

    #[test]
    fn transpose_is_involution(a in matrix(5, 7)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_is_a_distribution(logits in proptest::collection::vec(-50.0f32..50.0, 1..32)) {
        let p = softmax_row(&logits);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn log_softmax_exp_is_softmax(logits in proptest::collection::vec(-20.0f32..20.0, 1..16)) {
        let ls = log_softmax_row(&logits);
        let p = softmax_row(&logits);
        for (l, q) in ls.iter().zip(&p) {
            prop_assert!((l.exp() - q).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_preserves_ordering(logits in proptest::collection::vec(-5.0f32..5.0, 2..10)) {
        let p = softmax_row(&logits);
        for i in 0..logits.len() {
            for j in 0..logits.len() {
                if logits[i] > logits[j] {
                    prop_assert!(p[i] >= p[j]);
                }
            }
        }
    }

    #[test]
    fn percentile_is_within_range(xs in proptest::collection::vec(-100.0f32..100.0, 1..64), p in 0.0f32..=100.0) {
        let v = percentile(&xs, p);
        let lo = xs.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(v >= lo - 1e-6 && v <= hi + 1e-6);
    }

    #[test]
    fn hadamard_is_commutative(a in matrix(3, 3), b in matrix(3, 3)) {
        prop_assert_eq!(a.hadamard(&b), b.hadamard(&a));
    }

    #[test]
    fn scale_then_sum_is_linear(a in matrix(2, 6), k in -4.0f32..4.0) {
        let scaled_sum = a.scaled(k).sum();
        prop_assert!((scaled_sum - k * a.sum()).abs() < 1e-2);
    }
}
