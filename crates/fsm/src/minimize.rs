//! Moore-machine minimisation by partition refinement.
//!
//! Koul et al. minimise the raw extracted machine by repeatedly merging
//! states that emit the same action and transition to the same partitions on
//! every symbol. This is Hopcroft-style partition refinement specialised to
//! Moore machines with a partial transition function (unobserved
//! `(state, symbol)` pairs are treated as a distinguished ⊥ target: two
//! states only merge if they are undefined on exactly the same symbols).

use std::collections::HashMap;

use crate::machine::{Fsm, FsmState};

/// Minimises `fsm`, returning the quotient machine.
///
/// State support counts and transition counts are summed across merged
/// states. Symbol ids are preserved. The representative code of a merged
/// state is the code of its highest-support member.
pub fn minimize(fsm: &Fsm) -> Fsm {
    let n = fsm.num_states();
    if n == 0 {
        return fsm.clone();
    }

    // Initial partition: by emitted action.
    let mut class: Vec<usize> = fsm.states.iter().map(|s| s.action).collect();
    normalize_classes(&mut class);

    // Refine until stable: signature = (class, [(symbol, target class)…]).
    loop {
        let mut signatures: HashMap<(usize, Vec<(usize, usize)>), usize> = HashMap::new();
        let mut next_class = vec![0usize; n];
        for s in 0..n {
            let mut sig: Vec<(usize, usize)> = fsm
                .transitions
                .iter()
                .filter(|&(&(src, _), _)| src == s)
                .map(|(&(_, sym), &(dst, _))| (sym, class[dst]))
                .collect();
            sig.sort_unstable();
            let key = (class[s], sig);
            let fresh = signatures.len();
            next_class[s] = *signatures.entry(key).or_insert(fresh);
        }
        if next_class == class {
            break;
        }
        class = next_class;
    }

    build_quotient(fsm, &class)
}

/// Renumbers class labels to 0..k in first-appearance order.
fn normalize_classes(class: &mut [usize]) {
    let mut remap: HashMap<usize, usize> = HashMap::new();
    for c in class.iter_mut() {
        let fresh = remap.len();
        *c = *remap.entry(*c).or_insert(fresh);
    }
}

/// Builds the quotient machine for a state→class assignment.
fn build_quotient(fsm: &Fsm, class: &[usize]) -> Fsm {
    let num_classes = class.iter().copied().max().map_or(0, |m| m + 1);
    let mut states: Vec<Option<FsmState>> = vec![None; num_classes];
    for (s, st) in fsm.states.iter().enumerate() {
        let c = class[s];
        match &mut states[c] {
            None => {
                states[c] = Some(FsmState {
                    code: st.code.clone(),
                    action: st.action,
                    support: st.support,
                })
            }
            Some(existing) => {
                debug_assert_eq!(
                    existing.action, st.action,
                    "partition refinement merged states with different actions"
                );
                if st.support > existing.support {
                    existing.code = st.code.clone();
                }
                existing.support += st.support;
            }
        }
    }

    let mut transitions: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
    for (&(s, o), &(dst, count)) in &fsm.transitions {
        let entry = transitions.entry((class[s], o)).or_insert((class[dst], 0));
        debug_assert_eq!(
            entry.0, class[dst],
            "merged states disagree on successor class"
        );
        entry.1 += count;
    }

    Fsm {
        states: states
            .into_iter()
            .map(|s| s.expect("every class has a member"))
            .collect(),
        symbols: fsm.symbols.clone(),
        transitions,
        initial_state: class[fsm.initial_state],
    }
}

/// Merges *compatible* states of a partial machine (the second minimisation
/// stage of Koul et al.).
///
/// An FSM extracted from finitely many trajectories has a partial transition
/// function, and strict refinement ([`minimize`]) treats "undefined" as
/// distinguishing — so trajectory-chain states never merge. Compatible
/// merging instead unions two states when they emit the same action and
/// their transitions agree on every symbol *where both are defined*; the
/// merged state inherits the union of the transitions. This is what
/// collapses thousands of raw quantized states into the handful of
/// action-level modes the paper's Figure 5 shows (one circle per action),
/// at the cost of no longer being exactly behaviour-preserving on the
/// extraction dataset.
pub fn merge_compatible(fsm: &Fsm) -> Fsm {
    let n = fsm.num_states();
    if n == 0 {
        return fsm.clone();
    }

    // Union-find over states.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }

    // Per-class transition maps: symbol → (successor state, count).
    let mut class_trans: Vec<HashMap<usize, (usize, usize)>> = vec![HashMap::new(); n];
    for (&(s, o), &(dst, count)) in &fsm.transitions {
        class_trans[s].insert(o, (dst, count));
    }

    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            for j in (i + 1)..n {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri == rj || fsm.states[i].action != fsm.states[j].action {
                    continue;
                }
                // Compatible ⇔ common symbols lead to already-equal classes.
                let (small, large) = if class_trans[ri].len() <= class_trans[rj].len() {
                    (ri, rj)
                } else {
                    (rj, ri)
                };
                let compatible =
                    class_trans[small].iter().all(|(o, &(succ_s, _))| {
                        match class_trans[large].get(o) {
                            None => true,
                            Some(&(succ_l, _)) => {
                                find(&mut parent, succ_s) == find(&mut parent, succ_l)
                            }
                        }
                    });
                if !compatible {
                    continue;
                }
                // Union: larger map absorbs the smaller.
                let absorbed = std::mem::take(&mut class_trans[small]);
                for (o, (dst, count)) in absorbed {
                    class_trans[large]
                        .entry(o)
                        .and_modify(|e| e.1 += count)
                        .or_insert((dst, count));
                }
                parent[small] = large;
                changed = true;
            }
        }
    }

    // Final class labels.
    let mut class = vec![0usize; n];
    for (s, c) in class.iter_mut().enumerate() {
        *c = find(&mut parent, s);
    }
    normalize_classes(&mut class);
    build_quotient_union(fsm, &class)
}

/// Quotient construction that unions transitions of merged states (used by
/// compatible merging, where states may define different symbols).
fn build_quotient_union(fsm: &Fsm, class: &[usize]) -> Fsm {
    let num_classes = class.iter().copied().max().map_or(0, |m| m + 1);
    let mut states: Vec<Option<FsmState>> = vec![None; num_classes];
    for (s, st) in fsm.states.iter().enumerate() {
        let c = class[s];
        match &mut states[c] {
            None => {
                states[c] = Some(FsmState {
                    code: st.code.clone(),
                    action: st.action,
                    support: st.support,
                })
            }
            Some(existing) => {
                debug_assert_eq!(existing.action, st.action);
                if st.support > existing.support {
                    existing.code = st.code.clone();
                }
                existing.support += st.support;
            }
        }
    }

    let mut transitions: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
    for (&(s, o), &(dst, count)) in &fsm.transitions {
        let entry = transitions.entry((class[s], o)).or_insert((class[dst], 0));
        // Compatibility guarantees merged states agree where both defined.
        debug_assert_eq!(entry.0, class[dst], "incompatible states were merged");
        entry.1 += count;
    }

    Fsm {
        states: states
            .into_iter()
            .map(|s| s.expect("every class has a member"))
            .collect(),
        symbols: fsm.symbols.clone(),
        transitions,
        initial_state: class[fsm.initial_state],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ObsSymbol;
    use lahd_qbn::Code;

    /// A machine with two behaviourally identical states (1 and 2).
    fn redundant_fsm() -> Fsm {
        let mut transitions = HashMap::new();
        // 0 -sym0-> 1, 0 -sym1-> 2; 1 and 2 both: -sym0-> 0, -sym1-> 1/2.
        transitions.insert((0, 0), (1, 4));
        transitions.insert((0, 1), (2, 4));
        transitions.insert((1, 0), (0, 4));
        transitions.insert((2, 0), (0, 4));
        transitions.insert((1, 1), (1, 2));
        transitions.insert((2, 1), (2, 2));
        Fsm {
            states: vec![
                FsmState {
                    code: Code(vec![0]),
                    action: 0,
                    support: 8,
                },
                FsmState {
                    code: Code(vec![1]),
                    action: 1,
                    support: 6,
                },
                FsmState {
                    code: Code(vec![-1]),
                    action: 1,
                    support: 6,
                },
            ],
            symbols: vec![
                ObsSymbol {
                    code: Code(vec![1]),
                    centroid: vec![1.0],
                    support: 12,
                },
                ObsSymbol {
                    code: Code(vec![-1]),
                    centroid: vec![-1.0],
                    support: 8,
                },
            ],
            transitions,
            initial_state: 0,
        }
    }

    #[test]
    fn merges_equivalent_states() {
        let fsm = redundant_fsm();
        let min = minimize(&fsm);
        min.validate().unwrap();
        assert_eq!(min.num_states(), 2, "states 1 and 2 should merge");
        // Supports accumulate.
        let merged = min.states.iter().find(|s| s.action == 1).unwrap();
        assert_eq!(merged.support, 12);
    }

    #[test]
    fn preserves_behaviour_on_symbol_sequences() {
        let fsm = redundant_fsm();
        let min = minimize(&fsm);
        // Replay all symbol strings up to length 5 and compare emitted
        // action sequences.
        let mut stack = vec![(fsm.initial_state, min.initial_state, 0usize)];
        while let Some((s_orig, s_min, depth)) = stack.pop() {
            assert_eq!(fsm.action_of(s_orig), min.action_of(s_min));
            if depth == 5 {
                continue;
            }
            for sym in 0..fsm.num_symbols() {
                match (fsm.next_state(s_orig, sym), min.next_state(s_min, sym)) {
                    (Some(a), Some(b)) => stack.push((a, b, depth + 1)),
                    (None, None) => {}
                    (a, b) => panic!("definedness mismatch on symbol {sym}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn does_not_merge_states_with_different_actions() {
        let mut fsm = redundant_fsm();
        fsm.states[2].action = 2;
        // Make state 2's transitions self-consistent after the change.
        let min = minimize(&fsm);
        assert_eq!(min.num_states(), 3);
    }

    #[test]
    fn does_not_merge_states_with_different_definedness() {
        let mut fsm = redundant_fsm();
        fsm.transitions.remove(&(2, 1));
        let min = minimize(&fsm);
        // State 2 is now undefined on sym1 while state 1 is defined: no merge.
        assert_eq!(min.num_states(), 3);
    }

    #[test]
    fn minimization_is_idempotent() {
        let min1 = minimize(&redundant_fsm());
        let min2 = minimize(&min1);
        assert_eq!(min1.num_states(), min2.num_states());
        assert_eq!(min1.num_transitions(), min2.num_transitions());
    }

    #[test]
    fn initial_state_follows_its_class() {
        let fsm = redundant_fsm();
        let min = minimize(&fsm);
        assert_eq!(
            min.action_of(min.initial_state),
            fsm.action_of(fsm.initial_state)
        );
    }
}

#[cfg(test)]
mod compatible_tests {
    use super::*;
    use crate::machine::{FsmState, ObsSymbol};
    use lahd_qbn::Code;
    use std::collections::HashMap;

    /// A trajectory-chain machine: s0 -a-> s1 -b-> s2 -c-> s0, all Noop
    /// except s2.
    fn chain_fsm() -> Fsm {
        let mut transitions = HashMap::new();
        transitions.insert((0, 0), (1, 1));
        transitions.insert((1, 1), (2, 1));
        transitions.insert((2, 2), (0, 1));
        Fsm {
            states: vec![
                FsmState {
                    code: Code(vec![0]),
                    action: 0,
                    support: 1,
                },
                FsmState {
                    code: Code(vec![1]),
                    action: 0,
                    support: 1,
                },
                FsmState {
                    code: Code(vec![-1]),
                    action: 1,
                    support: 1,
                },
            ],
            symbols: (0..3)
                .map(|i| ObsSymbol {
                    code: Code(vec![i as i8 - 1]),
                    centroid: vec![i as f32],
                    support: 1,
                })
                .collect(),
            transitions,
            initial_state: 0,
        }
    }

    #[test]
    fn disjoint_definedness_merges_same_action_states() {
        let fsm = chain_fsm();
        // Strict refinement cannot merge anything…
        assert_eq!(minimize(&fsm).num_states(), 3);
        // …but compatible merging folds the two Noop states together.
        let merged = merge_compatible(&fsm);
        merged.validate().unwrap();
        assert_eq!(merged.num_states(), 2);
        // The merged Noop state has the union of the transitions.
        let noop = merged.states.iter().position(|s| s.action == 0).unwrap();
        assert!(merged.next_state(noop, 0).is_some());
        assert!(merged.next_state(noop, 1).is_some());
    }

    #[test]
    fn conflicting_common_symbols_prevent_merge() {
        let mut fsm = chain_fsm();
        // Give s0 and s1 a common symbol with different successors whose
        // classes cannot merge (different actions).
        fsm.transitions.insert((0, 1), (0, 1)); // s0 -b-> s0 (Noop class)
                                                // s1 -b-> s2 (action 1 class) already exists
        let merged = merge_compatible(&fsm);
        merged.validate().unwrap();
        assert_eq!(merged.num_states(), 3, "s0 and s1 must stay apart");
    }

    #[test]
    fn merged_counts_and_support_accumulate() {
        let fsm = chain_fsm();
        let merged = merge_compatible(&fsm);
        let noop = merged.states.iter().position(|s| s.action == 0).unwrap();
        assert_eq!(merged.states[noop].support, 2);
        assert_eq!(
            merged.total_transition_count(),
            fsm.total_transition_count()
        );
    }

    #[test]
    fn initial_state_maps_to_its_class() {
        let merged = merge_compatible(&chain_fsm());
        assert_eq!(merged.action_of(merged.initial_state), 0);
    }

    #[test]
    fn compatible_merge_is_idempotent() {
        let once = merge_compatible(&chain_fsm());
        let twice = merge_compatible(&once);
        assert_eq!(once.num_states(), twice.num_states());
    }
}
