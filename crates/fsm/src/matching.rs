//! Nearest-neighbour matching of unseen observations (paper §3.2.2).
//!
//! "The second one is to classify an unseen observation as its closest known
//! observation. … The similarity measures such as Euclidean distance and
//! cosine similarity can be applied."

/// Similarity metric used to resolve unseen observations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Squared Euclidean distance (smaller = closer).
    Euclidean,
    /// Cosine distance `1 − cos(a, b)` (smaller = closer).
    Cosine,
}

impl Metric {
    /// Distance between two equally sized vectors.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "metric on vectors of different lengths");
        match self {
            Metric::Euclidean => a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum(),
            Metric::Cosine => {
                let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
                let na: f32 = a.iter().map(|&x| x * x).sum::<f32>().sqrt();
                let nb: f32 = b.iter().map(|&x| x * x).sum::<f32>().sqrt();
                if na == 0.0 || nb == 0.0 {
                    // Degenerate vectors are maximally distant unless both
                    // are zero.
                    return if na == nb { 0.0 } else { 2.0 };
                }
                1.0 - dot / (na * nb)
            }
        }
    }

    /// Index of the candidate closest to `query` among `candidates`
    /// (ties break toward the lower index). `None` if `candidates` is empty.
    pub fn closest<'a>(
        self,
        query: &[f32],
        candidates: impl IntoIterator<Item = (usize, &'a [f32])>,
    ) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (idx, cand) in candidates {
            let d = self.distance(query, cand);
            match best {
                None => best = Some((idx, d)),
                Some((_, bd)) if d < bd => best = Some((idx, d)),
                _ => {}
            }
        }
        best.map(|(idx, _)| idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_prefers_nearby_point() {
        let cands = [vec![0.0, 0.0], vec![1.0, 1.0], vec![0.4, 0.4]];
        let idx = Metric::Euclidean.closest(
            &[0.5, 0.5],
            cands.iter().enumerate().map(|(i, v)| (i, v.as_slice())),
        );
        assert_eq!(idx, Some(2));
    }

    #[test]
    fn cosine_ignores_magnitude() {
        let cands = [vec![10.0, 0.0], vec![0.0, 0.1]];
        let idx = Metric::Cosine.closest(
            &[0.0, 5.0],
            cands.iter().enumerate().map(|(i, v)| (i, v.as_slice())),
        );
        assert_eq!(idx, Some(1));
    }

    #[test]
    fn euclidean_is_magnitude_sensitive() {
        assert!(
            Metric::Euclidean.distance(&[1.0, 0.0], &[10.0, 0.0])
                > Metric::Euclidean.distance(&[1.0, 0.0], &[0.0, 1.0])
        );
    }

    #[test]
    fn identical_vectors_have_zero_distance() {
        for m in [Metric::Euclidean, Metric::Cosine] {
            assert!(m.distance(&[0.3, -0.7], &[0.3, -0.7]).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_candidates_give_none() {
        assert_eq!(Metric::Euclidean.closest(&[1.0], std::iter::empty()), None);
    }

    #[test]
    fn zero_vector_cosine_is_well_defined() {
        assert_eq!(Metric::Cosine.distance(&[0.0, 0.0], &[1.0, 0.0]), 2.0);
        assert_eq!(Metric::Cosine.distance(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }
}
