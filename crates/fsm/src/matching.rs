//! Nearest-neighbour matching of unseen observations (paper §3.2.2).
//!
//! "The second one is to classify an unseen observation as its closest known
//! observation. … The similarity measures such as Euclidean distance and
//! cosine similarity can be applied."

/// Similarity metric used to resolve unseen observations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Squared Euclidean distance (smaller = closer).
    Euclidean,
    /// Cosine distance `1 − cos(a, b)` (smaller = closer).
    Cosine,
}

impl Metric {
    /// Distance between two equally sized vectors.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "metric on vectors of different lengths");
        match self {
            Metric::Euclidean => a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum(),
            Metric::Cosine => {
                let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
                let na: f32 = a.iter().map(|&x| x * x).sum::<f32>().sqrt();
                let nb: f32 = b.iter().map(|&x| x * x).sum::<f32>().sqrt();
                if na == 0.0 || nb == 0.0 {
                    // Degenerate vectors are maximally distant unless both
                    // are zero.
                    return if na == nb { 0.0 } else { 2.0 };
                }
                1.0 - dot / (na * nb)
            }
        }
    }

    /// Index of the candidate closest to `query` among `candidates`
    /// (ties break toward the lower index). `None` if `candidates` is empty.
    pub fn closest<'a>(
        self,
        query: &[f32],
        candidates: impl IntoIterator<Item = (usize, &'a [f32])>,
    ) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (idx, cand) in candidates {
            let d = self.distance(query, cand);
            match best {
                None => best = Some((idx, d)),
                Some((_, bd)) if d < bd => best = Some((idx, d)),
                _ => {}
            }
        }
        best.map(|(idx, _)| idx)
    }
}

/// Symbol centroids in one contiguous row-major matrix (SoA layout), with
/// nearest-centroid queries under a fixed [`Metric`].
///
/// This is the *single* nearest-neighbour implementation behind both the
/// interpreted executor and the compiled tier: both resolve fallbacks
/// through the same scan over the same memory, so their argmin (including
/// tie-breaks toward the lower index, inherited from [`Metric::closest`]'s
/// strict `<`) is identical by construction — the property the compiled ≡
/// interpreted equivalence pins lean on. The contiguous layout also makes
/// the scan cache-friendly next to the `Vec<Vec<f32>>` it replaces.
#[derive(Clone, Debug)]
pub struct CentroidIndex {
    metric: Metric,
    dim: usize,
    data: Vec<f32>,
}

impl CentroidIndex {
    /// Packs `centroids` (one slice per symbol id, all equally wide) under
    /// `metric`.
    ///
    /// # Panics
    /// Panics if the centroids disagree on width.
    pub fn new<'a>(metric: Metric, centroids: impl IntoIterator<Item = &'a [f32]>) -> Self {
        let mut data = Vec::new();
        let mut dim = 0;
        let mut count = 0;
        for c in centroids {
            if count == 0 {
                dim = c.len();
            }
            assert_eq!(c.len(), dim, "centroid width mismatch");
            data.extend_from_slice(c);
            count += 1;
        }
        Self { metric, dim, data }
    }

    /// Number of centroids.
    pub fn len(&self) -> usize {
        if self.dim == 0 {
            0
        } else {
            self.data.len() / self.dim
        }
    }

    /// Whether the index holds no centroids.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The metric queries run under.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Centroid `i` as a slice.
    pub fn centroid(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Closest centroid to `query` over all entries; `None` when empty.
    pub fn closest(&self, query: &[f32]) -> Option<usize> {
        self.metric
            .closest(query, (0..self.len()).map(|i| (i, self.centroid(i))))
    }

    /// Closest centroid to `query` among the ids in `among` (ties break
    /// toward the id listed first); `None` when `among` is empty.
    pub fn closest_among(&self, query: &[f32], among: &[usize]) -> Option<usize> {
        self.metric
            .closest(query, among.iter().map(|&i| (i, self.centroid(i))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_prefers_nearby_point() {
        let cands = [vec![0.0, 0.0], vec![1.0, 1.0], vec![0.4, 0.4]];
        let idx = Metric::Euclidean.closest(
            &[0.5, 0.5],
            cands.iter().enumerate().map(|(i, v)| (i, v.as_slice())),
        );
        assert_eq!(idx, Some(2));
    }

    #[test]
    fn cosine_ignores_magnitude() {
        let cands = [vec![10.0, 0.0], vec![0.0, 0.1]];
        let idx = Metric::Cosine.closest(
            &[0.0, 5.0],
            cands.iter().enumerate().map(|(i, v)| (i, v.as_slice())),
        );
        assert_eq!(idx, Some(1));
    }

    #[test]
    fn euclidean_is_magnitude_sensitive() {
        assert!(
            Metric::Euclidean.distance(&[1.0, 0.0], &[10.0, 0.0])
                > Metric::Euclidean.distance(&[1.0, 0.0], &[0.0, 1.0])
        );
    }

    #[test]
    fn identical_vectors_have_zero_distance() {
        for m in [Metric::Euclidean, Metric::Cosine] {
            assert!(m.distance(&[0.3, -0.7], &[0.3, -0.7]).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_candidates_give_none() {
        assert_eq!(Metric::Euclidean.closest(&[1.0], std::iter::empty()), None);
    }

    #[test]
    fn centroid_index_matches_direct_closest() {
        let cands = [
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.4, 0.4],
            vec![5.0, -1.0],
        ];
        for metric in [Metric::Euclidean, Metric::Cosine] {
            let idx = CentroidIndex::new(metric, cands.iter().map(Vec::as_slice));
            assert_eq!(idx.len(), 4);
            for q in [[0.5, 0.5], [4.0, -0.5], [-1.0, 2.0]] {
                let direct =
                    metric.closest(&q, cands.iter().enumerate().map(|(i, v)| (i, v.as_slice())));
                assert_eq!(idx.closest(&q), direct, "{metric:?} {q:?}");
                let among = [2usize, 0, 3];
                let direct_sub =
                    metric.closest(&q, among.iter().map(|&i| (i, cands[i].as_slice())));
                assert_eq!(idx.closest_among(&q, &among), direct_sub);
            }
        }
    }

    #[test]
    fn empty_centroid_index_is_quiet() {
        let idx = CentroidIndex::new(Metric::Euclidean, std::iter::empty());
        assert!(idx.is_empty());
        assert_eq!(idx.closest(&[]), None);
    }

    #[test]
    fn zero_vector_cosine_is_well_defined() {
        assert_eq!(Metric::Cosine.distance(&[0.0, 0.0], &[1.0, 0.0]), 2.0);
        assert_eq!(Metric::Cosine.distance(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }
}
