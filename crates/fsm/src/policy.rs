//! The policy abstractions and the extracted-FSM policy.
//!
//! Two levels of abstraction coexist here:
//!
//! * [`VecPolicy`] — the scenario-generic controller: consumes normalised
//!   observation *vectors* and emits action *indices*. FSM execution,
//!   neural policies and generic baselines all speak this language, which
//!   is what lets the extraction pipeline run over any storage scenario.
//! * [`Policy`] — the Dorado-typed controller over
//!   [`lahd_sim::Observation`] / [`lahd_sim::Action`], kept as the
//!   interface of the original case study's evaluation harness.
//!
//! [`FsmExecutor`] is the scenario-generic machine executor;
//! [`FsmPolicy`] wraps it with the Dorado observation normalisation.

use std::sync::Arc;

use lahd_qbn::{EncodeScratch, Qbn};
use lahd_sim::{Action, Observation, SimConfig};

use crate::compile::compile_fsm;
use crate::compiled::{CompiledFsm, CompiledScratch};
use crate::machine::{Fsm, FsmIndex};
use crate::matching::{CentroidIndex, Metric};

/// A controller for the Dorado storage simulator: one action per interval.
pub trait Policy {
    /// Resets internal state for a new episode.
    fn reset(&mut self);
    /// Chooses the action for the upcoming interval.
    fn act(&mut self, obs: &Observation) -> Action;
    /// Policy name for reports.
    fn name(&self) -> &str;
}

/// A scenario-generic controller: normalised observation vectors in, action
/// indices out. The meaning of the indices is defined by the scenario's
/// action table.
pub trait VecPolicy {
    /// Resets internal state for a new episode.
    fn reset(&mut self);
    /// Chooses the action index for the upcoming interval.
    fn act_vec(&mut self, obs: &[f32]) -> usize;
    /// Policy name for reports.
    fn name(&self) -> &str;
}

/// One step of an FSM execution, recorded for interpretation.
#[derive(Clone, Debug)]
pub struct TrajStep {
    /// Step index within the episode.
    pub t: usize,
    /// State before consuming the observation.
    pub from_state: usize,
    /// Matched observation symbol (`None` when no transition fired and the
    /// machine stayed put without a symbol).
    pub symbol: Option<usize>,
    /// State after the transition.
    pub to_state: usize,
    /// The continuous observation vector.
    pub obs: Vec<f32>,
    /// Action emitted (the new state's action).
    pub action: usize,
}

/// A recorded FSM execution.
#[derive(Clone, Debug, Default)]
pub struct Trajectory {
    /// Steps in order.
    pub steps: Vec<TrajStep>,
}

/// Execution statistics of an FSM run (generalisation diagnostics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsmRunStats {
    /// Steps taken.
    pub steps: usize,
    /// Observations whose quantized code was never seen at extraction time
    /// and had to be matched by nearest-neighbour.
    pub unseen_observations: usize,
    /// `(state, symbol)` pairs with no recorded transition that fell back to
    /// nearest-neighbour among the state's known symbols.
    pub missing_transitions: usize,
    /// Steps where no fallback was possible and the machine held its state.
    pub stuck_steps: usize,
}

/// Executes an extracted [`Fsm`] over observation vectors, with the paper's
/// nearest-neighbour fallback for unseen observations. Scenario-agnostic:
/// the vectors must simply use the normalisation the machine was extracted
/// under.
///
/// Two execution paths coexist behind [`FsmExecutor::step_vec`]:
///
/// * the **compiled fast path** — when the machine lowered cleanly through
///   [`compile_fsm`] and no trajectory is being recorded, each step runs
///   the flat-table [`CompiledFsm`] (threshold quantizer, packed symbol
///   probe, dense transition table);
/// * the **interpreter** — the reference semantics, also used whenever a
///   trajectory is recorded (the compiled tables don't track *which*
///   symbol a fallback resolved to, only the outcome).
///
/// The two are action- and stats-identical by construction (shared QBN
/// GEMVs, verified quantizer thresholds, shared [`CentroidIndex`] argmin,
/// fallbacks precomputed from the same queries); the
/// `compiled_equivalence` suite pins that property.
pub struct FsmExecutor {
    fsm: Fsm,
    obs_qbn: Qbn,
    metric: Metric,
    nn_matching: bool,
    name: String,
    // Caches.
    index: FsmIndex,
    centroids: CentroidIndex,
    compiled: Option<Arc<CompiledFsm>>,
    compiled_scratch: Option<CompiledScratch>,
    enc_scratch: EncodeScratch,
    code_buf: Vec<i8>,
    // Episode state.
    state: usize,
    t: usize,
    stats: FsmRunStats,
    trajectory: Option<Trajectory>,
    /// Lifetime count of unseen observations, across episode resets — the
    /// guard layer's long-horizon generalisation signal.
    unseen_total: u64,
}

impl FsmExecutor {
    /// Wraps an extracted machine with its observation quantizer, lowering
    /// it through the compile pass when possible (machines outside the
    /// compiled envelope silently run interpreted).
    ///
    /// `nn_matching` toggles the paper's nearest-neighbour generalisation
    /// (§3.2.2); with it off the machine holds its state on unseen input
    /// (ablation baseline).
    pub fn new(fsm: Fsm, obs_qbn: Qbn, metric: Metric, nn_matching: bool) -> Self {
        let compiled = compile_fsm(&fsm, &obs_qbn, metric, nn_matching)
            .ok()
            .map(Arc::new);
        Self::with_compiled(fsm, obs_qbn, metric, nn_matching, compiled)
    }

    /// Like [`FsmExecutor::new`], but never compiles: every step runs the
    /// reference interpreter. Used by the equivalence pins and available as
    /// a diagnostic escape hatch.
    pub fn interpreted(fsm: Fsm, obs_qbn: Qbn, metric: Metric, nn_matching: bool) -> Self {
        Self::with_compiled(fsm, obs_qbn, metric, nn_matching, None)
    }

    /// Like [`FsmExecutor::new`], but reuses an already-compiled machine
    /// (e.g. one `Arc<CompiledFsm>` shared across serving streams) instead
    /// of lowering again.
    pub fn with_compiled(
        fsm: Fsm,
        obs_qbn: Qbn,
        metric: Metric,
        nn_matching: bool,
        compiled: Option<Arc<CompiledFsm>>,
    ) -> Self {
        fsm.validate().expect("extracted FSM must be consistent");
        let index = fsm.index();
        let centroids =
            CentroidIndex::new(metric, fsm.symbols.iter().map(|s| s.centroid.as_slice()));
        let state = fsm.initial_state;
        let enc_scratch = obs_qbn.make_encode_scratch();
        let code_buf = vec![0; obs_qbn.config().latent_dim];
        let compiled_scratch = compiled.as_deref().map(CompiledFsm::make_scratch);
        Self {
            fsm,
            obs_qbn,
            metric,
            nn_matching,
            name: "extracted-fsm".to_string(),
            index,
            centroids,
            compiled,
            compiled_scratch,
            enc_scratch,
            code_buf,
            state,
            t: 0,
            stats: FsmRunStats::default(),
            trajectory: None,
            unseen_total: 0,
        }
    }

    /// The compiled lowering of this machine, when it compiled cleanly —
    /// shareable across other executors or the serving tier.
    pub fn compiled(&self) -> Option<&Arc<CompiledFsm>> {
        self.compiled.as_ref()
    }

    /// Enables trajectory recording (needed for interpretation).
    pub fn record_trajectory(&mut self, on: bool) {
        self.trajectory = if on {
            Some(Trajectory::default())
        } else {
            None
        };
    }

    /// Takes the recorded trajectory, leaving recording enabled.
    pub fn take_trajectory(&mut self) -> Trajectory {
        match &mut self.trajectory {
            Some(t) => std::mem::take(t),
            None => Trajectory::default(),
        }
    }

    /// Execution statistics since the last [`FsmExecutor::reset`].
    pub fn stats(&self) -> FsmRunStats {
        self.stats
    }

    /// Lifetime count of observations whose quantized code was never seen
    /// at extraction time. Unlike [`FsmExecutor::stats`], this counter
    /// survives [`FsmExecutor::reset`]: a deployed machine accumulates it
    /// across episodes, and a climbing rate is an early sign the input
    /// distribution has left the training support.
    pub fn unseen_count(&self) -> u64 {
        self.unseen_total
    }

    /// The wrapped machine.
    pub fn fsm(&self) -> &Fsm {
        &self.fsm
    }

    /// Current FSM state id.
    pub fn current_state(&self) -> usize {
        self.state
    }

    /// The similarity metric the nearest-neighbour fallbacks run under.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Resolves an observation vector to a symbol id, using exact code
    /// lookup first and nearest-neighbour on the centroids otherwise.
    /// Allocation-free: encodes through the executor-owned scratch and
    /// probes the index by raw digit slice.
    fn resolve_symbol(&mut self, v: &[f32]) -> Option<usize> {
        self.obs_qbn
            .encode_into(v, &mut self.enc_scratch, &mut self.code_buf);
        if let Some(sym) = self.index.symbol_by_digits(&self.code_buf) {
            return Some(sym);
        }
        self.stats.unseen_observations += 1;
        self.unseen_total += 1;
        if !self.nn_matching {
            return None;
        }
        self.centroids.closest(v)
    }

    /// One step of the reference interpreter (see the type-level docs for
    /// when this runs instead of the compiled fast path).
    fn step_interpreted(&mut self, v: &[f32]) -> usize {
        let mut symbol = self.resolve_symbol(v);

        // If the exact/NN-matched symbol has no transition from the current
        // state, fall back to the nearest symbol that does (§3.2.2: the
        // unseen observation "can therefore trigger a transition"). The
        // query point is the resolved symbol's *centroid*: a pure function
        // of the discrete `(state, symbol)` pair, which is what lets the
        // compile pass burn this fallback into the dense table.
        let mut next = symbol.and_then(|sym| self.fsm.next_state(self.state, sym));
        if next.is_none() && self.nn_matching {
            if let Some(sym) = symbol {
                let outgoing = self.index.symbols_from(self.state);
                if !outgoing.is_empty() {
                    self.stats.missing_transitions += 1;
                    let query = self.centroids.centroid(sym);
                    if let Some(fallback) = self.centroids.closest_among(query, outgoing) {
                        symbol = Some(fallback);
                        next = self.fsm.next_state(self.state, fallback);
                    }
                }
            }
        }
        let to_state = match next {
            Some(s) => s,
            None => {
                self.stats.stuck_steps += 1;
                self.state
            }
        };

        let action_idx = self.fsm.action_of(to_state);
        if let Some(traj) = &mut self.trajectory {
            traj.steps.push(TrajStep {
                t: self.t,
                from_state: self.state,
                symbol,
                to_state,
                obs: v.to_vec(),
                action: action_idx,
            });
        }
        self.state = to_state;
        self.t += 1;
        self.stats.steps += 1;
        action_idx
    }

    /// One step of the machine: consumes the observation vector, fires a
    /// transition (with the §3.2.2 fallbacks) and returns the action index
    /// of the resulting state. Dispatches to the compiled fast path when
    /// available and no trajectory is being recorded.
    pub fn step_vec(&mut self, v: &[f32]) -> usize {
        if self.trajectory.is_none() {
            // Split borrows: the compiled machine and its scratch are
            // disjoint fields.
            if let (Some(compiled), Some(scratch)) =
                (self.compiled.as_deref(), self.compiled_scratch.as_mut())
            {
                let outcome = compiled.step(v, self.state as u16, scratch);
                self.stats.steps += 1;
                if outcome.unseen {
                    self.stats.unseen_observations += 1;
                    self.unseen_total += 1;
                }
                match outcome.tag {
                    crate::compiled::SlotTag::Observed => {}
                    crate::compiled::SlotTag::Missing => self.stats.missing_transitions += 1,
                    crate::compiled::SlotTag::Stuck => self.stats.stuck_steps += 1,
                }
                self.state = outcome.next_state as usize;
                self.t += 1;
                return outcome.action as usize;
            }
        }
        self.step_interpreted(v)
    }
}

impl VecPolicy for FsmExecutor {
    fn reset(&mut self) {
        self.state = self.fsm.initial_state;
        self.t = 0;
        self.stats = FsmRunStats::default();
        if let Some(t) = &mut self.trajectory {
            t.steps.clear();
        }
    }

    fn act_vec(&mut self, obs: &[f32]) -> usize {
        self.step_vec(obs)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Executes an extracted [`Fsm`] as a Dorado simulator policy: the
/// [`FsmExecutor`] behind the [`Observation`] normalisation of the original
/// case study.
pub struct FsmPolicy {
    exec: FsmExecutor,
    sim_cfg: SimConfig,
}

impl FsmPolicy {
    /// Wraps an extracted machine with its observation quantizer.
    ///
    /// `sim_cfg` must be the configuration used for observation
    /// normalisation during training. `nn_matching` toggles the paper's
    /// nearest-neighbour generalisation (§3.2.2); with it off the machine
    /// holds its state on unseen input (ablation baseline).
    pub fn new(
        fsm: Fsm,
        obs_qbn: Qbn,
        sim_cfg: SimConfig,
        metric: Metric,
        nn_matching: bool,
    ) -> Self {
        Self {
            exec: FsmExecutor::new(fsm, obs_qbn, metric, nn_matching),
            sim_cfg,
        }
    }

    /// Enables trajectory recording (needed for interpretation).
    pub fn record_trajectory(&mut self, on: bool) {
        self.exec.record_trajectory(on);
    }

    /// Takes the recorded trajectory, leaving recording enabled.
    pub fn take_trajectory(&mut self) -> Trajectory {
        self.exec.take_trajectory()
    }

    /// Execution statistics since the last [`FsmPolicy::reset`].
    pub fn stats(&self) -> FsmRunStats {
        self.exec.stats()
    }

    /// The wrapped machine.
    pub fn fsm(&self) -> &Fsm {
        self.exec.fsm()
    }

    /// Current FSM state id.
    pub fn current_state(&self) -> usize {
        self.exec.current_state()
    }

    /// Lifetime unseen-observation count (survives resets); see
    /// [`FsmExecutor::unseen_count`].
    pub fn unseen_count(&self) -> u64 {
        self.exec.unseen_count()
    }

    /// The scenario-generic executor inside this policy.
    pub fn executor(&self) -> &FsmExecutor {
        &self.exec
    }
}

impl Policy for FsmPolicy {
    fn reset(&mut self) {
        VecPolicy::reset(&mut self.exec);
    }

    fn act(&mut self, obs: &Observation) -> Action {
        let v = obs.to_vector(&self.sim_cfg);
        Action::from_index(self.exec.step_vec(&v))
    }

    fn name(&self) -> &str {
        VecPolicy::name(&self.exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::testutil::two_state_fsm;
    use lahd_qbn::QbnConfig;
    use lahd_sim::{canonical_io_classes, IntervalWorkload, NUM_IO_CLASSES};

    fn obs(requests: f64) -> Observation {
        let mut mix = [0.0; NUM_IO_CLASSES];
        mix[0] = 1.0;
        Observation::new(
            [16, 8, 8],
            [0.5, 0.5, 0.5],
            &canonical_io_classes(),
            &IntervalWorkload::new(mix, requests),
        )
    }

    fn policy(nn: bool) -> FsmPolicy {
        // The toy FSM uses 1-entry codes; build a matching QBN over the
        // 35-dim observation space with latent width 1.
        let qbn = Qbn::new(QbnConfig::with_dims(Observation::DIM, 1), 5);
        let mut fsm = two_state_fsm();
        // Make symbol centroids live in observation space.
        let dim = Observation::DIM;
        fsm.symbols[0].centroid = vec![0.0; dim];
        fsm.symbols[1].centroid = vec![0.5; dim];
        // Align symbol codes with what the QBN actually produces so exact
        // lookup can fire for at least one input.
        fsm.symbols[0].code = qbn.encode(&obs(100.0).to_vector(&SimConfig::default()));
        FsmPolicy::new(fsm, qbn, SimConfig::default(), Metric::Euclidean, nn)
    }

    #[test]
    fn starts_in_initial_state_and_resets() {
        let mut p = policy(true);
        assert_eq!(p.current_state(), 0);
        p.act(&obs(100.0));
        p.reset();
        assert_eq!(p.current_state(), 0);
        assert_eq!(p.stats().steps, 0);
    }

    #[test]
    fn exact_symbol_match_fires_transition() {
        let mut p = policy(true);
        let a = p.act(&obs(100.0));
        // Symbol 0 from state 0 goes to state 1, which emits action 1.
        assert_eq!(p.current_state(), 1);
        assert_eq!(a, Action::from_index(1));
        assert_eq!(p.stats().unseen_observations, 0);
    }

    #[test]
    fn executor_and_policy_agree_on_vectors() {
        let mut p = policy(true);
        let qbn = Qbn::new(QbnConfig::with_dims(Observation::DIM, 1), 5);
        let mut fsm = two_state_fsm();
        fsm.symbols[0].centroid = vec![0.0; Observation::DIM];
        fsm.symbols[1].centroid = vec![0.5; Observation::DIM];
        fsm.symbols[0].code = qbn.encode(&obs(100.0).to_vector(&SimConfig::default()));
        let mut exec = FsmExecutor::new(fsm, qbn, Metric::Euclidean, true);
        for q in [100.0, 400.0, 100.0, 8000.0] {
            let o = obs(q);
            let v = o.to_vector(&SimConfig::default());
            assert_eq!(p.act(&o).index(), exec.act_vec(&v));
        }
    }

    #[test]
    fn unseen_observation_uses_nearest_neighbour_when_enabled() {
        let mut p = policy(true);
        // A very different observation: unlikely to hit the aligned code.
        let weird = obs(8000.0);
        p.act(&weird);
        let stats = p.stats();
        assert_eq!(stats.steps, 1);
        // Either the code happened to collide (fine) or NN matching was
        // used; in both cases the machine must not be stuck.
        assert_eq!(stats.stuck_steps, 0);
    }

    #[test]
    fn without_nn_matching_machine_can_stick() {
        let mut p = policy(false);
        let weird = obs(8000.0);
        let before = p.current_state();
        p.act(&weird);
        let stats = p.stats();
        if stats.unseen_observations > 0 {
            assert_eq!(
                p.current_state(),
                before,
                "must hold state without NN fallback"
            );
            assert_eq!(stats.stuck_steps, 1);
        }
    }

    #[test]
    fn unseen_count_survives_reset_while_stats_do_not() {
        // Give both symbols codes the QBN can never emit, so every
        // observation is guaranteed unseen.
        let qbn = Qbn::new(QbnConfig::with_dims(4, 1), 5);
        let mut fsm = two_state_fsm();
        fsm.symbols[0].centroid = vec![0.0; 4];
        fsm.symbols[1].centroid = vec![0.5; 4];
        fsm.symbols[0].code = lahd_qbn::Code(vec![100]);
        fsm.symbols[1].code = lahd_qbn::Code(vec![101]);
        let mut exec = FsmExecutor::new(fsm, qbn, Metric::Euclidean, true);
        for i in 0..3 {
            exec.act_vec(&[i as f32 * 0.1; 4]);
        }
        assert_eq!(exec.unseen_count(), 3);
        assert_eq!(exec.stats().unseen_observations, 3);
        VecPolicy::reset(&mut exec);
        assert_eq!(
            exec.stats().unseen_observations,
            0,
            "per-episode stats reset"
        );
        assert_eq!(exec.unseen_count(), 3, "lifetime counter survives reset");
        exec.act_vec(&[0.9; 4]);
        assert_eq!(exec.unseen_count(), 4, "keeps accumulating");
    }

    #[test]
    fn trajectory_records_steps() {
        let mut p = policy(true);
        p.record_trajectory(true);
        p.act(&obs(100.0));
        p.act(&obs(100.0));
        let traj = p.take_trajectory();
        assert_eq!(traj.steps.len(), 2);
        assert_eq!(traj.steps[0].from_state, 0);
        assert_eq!(traj.steps[0].to_state, 1);
        assert_eq!(traj.steps[0].obs.len(), Observation::DIM);
    }
}
