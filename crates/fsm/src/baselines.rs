//! Baseline policies from the paper's evaluation (§4.3.2), plus the
//! scenario-generic constant baseline.

use lahd_sim::{Action, Level, Observation};

use crate::policy::{Policy, VecPolicy};

/// The scenario-generic production default: always emit one fixed action
/// index, whatever the observation (the "no migration" / "readahead off" /
/// "do nothing" baseline of any scenario).
#[derive(Clone, Debug)]
pub struct ConstantPolicy {
    action: usize,
    name: String,
}

impl ConstantPolicy {
    /// A policy that always emits `action`, reported under `name`.
    pub fn new(action: usize, name: impl Into<String>) -> Self {
        Self {
            action,
            name: name.into(),
        }
    }
}

impl VecPolicy for ConstantPolicy {
    fn reset(&mut self) {}

    fn act_vec(&mut self, _obs: &[f32]) -> usize {
        self.action
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The production default: "no CPU migration during testing".
#[derive(Clone, Copy, Debug, Default)]
pub struct DefaultPolicy;

impl Policy for DefaultPolicy {
    fn reset(&mut self) {}

    fn act(&mut self, _obs: &Observation) -> Action {
        Action::Noop
    }

    fn name(&self) -> &str {
        "default"
    }
}

/// The expert-handcrafted FSM: "migrating CPU cores from the level with the
/// lowest CPU utilization rate to the one with the highest CPU utilization
/// rate".
///
/// Implemented as the two-state machine an expert would actually ship:
///
/// * **Watch** — if the busiest level is *saturated* (utilisation at least
///   `saturation_threshold`, i.e. it is burning its whole capacity and
///   likely backlogged) and the gap to the idlest level exceeds
///   `gap_threshold`, migrate one core from the idlest to the busiest level
///   and enter **Cooldown**;
/// * **Cooldown(n)** — hold for `cooldown` intervals so the migrated core's
///   penalty interval and the next utilisation sample are not acted upon
///   (prevents oscillation).
///
/// The saturation guard is what stops the rule from strip-mining the quiet
/// levels during a long one-sided phase and then paying double when the
/// workload flips — the failure mode a pure min→max rule exhibits.
#[derive(Clone, Copy, Debug)]
pub struct HandcraftedFsm {
    /// Minimum utilisation gap before migrating.
    pub gap_threshold: f64,
    /// Minimum utilisation of the busiest level before it may receive a
    /// core.
    pub saturation_threshold: f64,
    /// Intervals to hold after each migration.
    pub cooldown: usize,
    remaining_cooldown: usize,
}

impl HandcraftedFsm {
    /// Creates the policy with explicit thresholds.
    pub fn new(gap_threshold: f64, saturation_threshold: f64, cooldown: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&gap_threshold),
            "gap threshold must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&saturation_threshold),
            "saturation threshold must be in [0, 1]"
        );
        Self {
            gap_threshold,
            saturation_threshold,
            cooldown,
            remaining_cooldown: 0,
        }
    }

    /// The tuning the expert settled on in user-acceptance testing.
    pub fn tuned() -> Self {
        Self::new(0.15, 0.9, 1)
    }
}

impl Default for HandcraftedFsm {
    fn default() -> Self {
        Self::tuned()
    }
}

impl Policy for HandcraftedFsm {
    fn reset(&mut self) {
        self.remaining_cooldown = 0;
    }

    fn act(&mut self, obs: &Observation) -> Action {
        if self.remaining_cooldown > 0 {
            self.remaining_cooldown -= 1;
            return Action::Noop;
        }
        let u = &obs.utilization;
        let mut hi = 0;
        let mut lo = 0;
        for i in 1..3 {
            if u[i] > u[hi] {
                hi = i;
            }
            if u[i] < u[lo] {
                lo = i;
            }
        }
        if hi == lo || u[hi] < self.saturation_threshold || u[hi] - u[lo] < self.gap_threshold {
            return Action::Noop;
        }
        self.remaining_cooldown = self.cooldown;
        Action::Migrate {
            from: Level::from_index(lo),
            to: Level::from_index(hi),
        }
    }

    fn name(&self) -> &str {
        "handcrafted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahd_sim::{canonical_io_classes, IntervalWorkload, NUM_IO_CLASSES};

    fn obs_with_util(u: [f64; 3]) -> Observation {
        let mut mix = [0.0; NUM_IO_CLASSES];
        mix[0] = 1.0;
        Observation::new(
            [16, 8, 8],
            u,
            &canonical_io_classes(),
            &IntervalWorkload::new(mix, 10.0),
        )
    }

    #[test]
    fn constant_policy_ignores_observations() {
        let mut p = ConstantPolicy::new(3, "fixed-3");
        assert_eq!(p.act_vec(&[0.0; 8]), 3);
        assert_eq!(p.act_vec(&[1.0; 2]), 3);
        p.reset();
        assert_eq!(VecPolicy::name(&p), "fixed-3");
    }

    #[test]
    fn default_policy_never_migrates() {
        let mut p = DefaultPolicy;
        for u in [[0.0, 1.0, 0.5], [1.0, 0.0, 0.0]] {
            assert_eq!(p.act(&obs_with_util(u)), Action::Noop);
        }
    }

    #[test]
    fn handcrafted_moves_from_idle_to_saturated() {
        let mut p = HandcraftedFsm::new(0.1, 0.95, 0);
        let a = p.act(&obs_with_util([0.98, 0.2, 0.5]));
        assert_eq!(
            a,
            Action::Migrate {
                from: Level::Kv,
                to: Level::Normal
            }
        );
    }

    #[test]
    fn handcrafted_holds_when_balanced() {
        let mut p = HandcraftedFsm::new(0.1, 0.95, 0);
        assert_eq!(p.act(&obs_with_util([0.5, 0.55, 0.52])), Action::Noop);
    }

    #[test]
    fn handcrafted_holds_when_busy_level_not_saturated() {
        // Big gap but the busiest level is not backlogged: migrating cannot
        // shorten the makespan, so the expert rule holds.
        let mut p = HandcraftedFsm::new(0.1, 0.95, 0);
        assert_eq!(p.act(&obs_with_util([0.7, 0.1, 0.3])), Action::Noop);
    }

    #[test]
    fn cooldown_suppresses_consecutive_migrations() {
        let mut p = HandcraftedFsm::new(0.1, 0.95, 2);
        let busy = obs_with_util([0.99, 0.1, 0.5]);
        assert!(p.act(&busy).is_migration());
        assert_eq!(p.act(&busy), Action::Noop);
        assert_eq!(p.act(&busy), Action::Noop);
        assert!(p.act(&busy).is_migration());
    }

    #[test]
    fn reset_clears_cooldown() {
        let mut p = HandcraftedFsm::new(0.1, 0.95, 5);
        let busy = obs_with_util([0.99, 0.1, 0.5]);
        assert!(p.act(&busy).is_migration());
        p.reset();
        assert!(p.act(&busy).is_migration());
    }

    #[test]
    #[should_panic(expected = "gap threshold")]
    fn invalid_threshold_rejected() {
        let _ = HandcraftedFsm::new(1.5, 0.95, 0);
    }
}
