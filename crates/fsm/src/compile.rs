//! The lowering pass behind [`crate::CompiledFsm`]: turns an [`Fsm`] plus
//! its observation QBN into flat, branch-free lookup structures at load
//! time, so the per-decision hot path does no neural decode bookkeeping,
//! no heap allocation and no hashing of owned keys.
//!
//! Three artifacts come out of a compile:
//!
//! 1. **Latent quantizer thresholds.** `QuantLevels::quantize` costs two
//!    to three libm `tanh` calls per latent entry; but the composed map
//!    `pre-activation → level` is a monotone step function, so its level
//!    boundaries are *two f32 constants*. They are recovered by bisection
//!    over the f32 bit ordering and then verified against the reference
//!    quantizer (a dense ULP window around each boundary plus a coarse
//!    grid); if verification fails — FP non-monotonicity in some libm —
//!    the compile degrades to calling the reference per entry, which is
//!    exact by definition.
//! 2. **A packed symbol table.** Codes are ≤ 64 ternary digits, so a code
//!    packs into a `u128` key (2 bits per digit); an open-addressing table
//!    replaces `HashMap<Code, usize>`'s hasher + owned-key allocation with
//!    one multiply and a probe over two flat arrays.
//! 3. **A dense transition table.** Every `(state, symbol)` slot is filled
//!    at compile time: observed transitions verbatim, missing transitions
//!    resolved through the §3.2.2 nearest-neighbour fallback *once* (the
//!    fallback is a pure function of the discrete pair — see
//!    [`crate::FsmExecutor`]'s symbol-centroid query), dead ends as
//!    hold-state slots. A provenance tag per slot lets the runtime keep
//!    the interpreter's `missing_transitions`/`stuck_steps` statistics
//!    without re-deriving anything.

use lahd_qbn::{Qbn, QuantLevels};

use crate::compiled::{CompiledFsm, SlotTag};
use crate::machine::Fsm;
use crate::matching::{CentroidIndex, Metric};

/// Why a machine could not be lowered. The caller (e.g.
/// [`crate::FsmExecutor::new`]) falls back to the interpreter, which
/// handles every machine the compile pass rejects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The machine failed [`Fsm::validate`].
    Invalid(String),
    /// More states than a `u16` next-state entry can address.
    TooManyStates(usize),
    /// More symbols than a `u16` table entry can address.
    TooManySymbols(usize),
    /// The QBN's latent width exceeds the 64 digits a `u128` key packs.
    LatentTooWide(usize),
    /// Symbol centroids disagree on width, so the nearest-neighbour
    /// fallback cannot be precomputed.
    CentroidWidthMismatch {
        /// Width of symbol 0's centroid.
        expected: usize,
        /// First differing width found.
        found: usize,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Invalid(msg) => write!(f, "inconsistent machine: {msg}"),
            CompileError::TooManyStates(n) => write!(f, "{n} states exceed the u16 table range"),
            CompileError::TooManySymbols(n) => write!(f, "{n} symbols exceed the u16 table range"),
            CompileError::LatentTooWide(l) => {
                write!(f, "latent width {l} exceeds the 64-digit packed-key limit")
            }
            CompileError::CentroidWidthMismatch { expected, found } => {
                write!(f, "symbol centroid widths disagree ({expected} vs {found})")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// How the compiled tier maps latent pre-activations to discrete levels.
#[derive(Clone, Copy, Debug)]
pub(crate) enum LatentQuantizer {
    /// Two compares: `x >= plus_min → +1`, `x <= minus_max → −1`, else 0.
    /// For binary levels the two constants are adjacent floats, so the
    /// middle band is empty.
    Thresholds {
        /// Smallest f32 the reference quantizer maps to `+1`.
        plus_min: f32,
        /// Largest f32 the reference quantizer maps to `−1`.
        minus_max: f32,
    },
    /// Verification found a boundary disagreement: call the reference
    /// quantizer per entry (exact by definition, a few libm calls slower).
    Scalar(QuantLevels),
}

impl LatentQuantizer {
    /// Quantizes one pre-activation value; identical output to
    /// `QuantLevels::quantize` for every finite input (the property the
    /// derivation verifies before choosing the threshold form).
    #[inline]
    pub(crate) fn quantize(self, x: f32) -> i8 {
        match self {
            LatentQuantizer::Thresholds {
                plus_min,
                minus_max,
            } => {
                // Branchless on the match path: two compares, two casts.
                (x >= plus_min) as i8 - (x <= minus_max) as i8
            }
            LatentQuantizer::Scalar(levels) => levels.quantize(x),
        }
    }
}

/// Monotone bijection f32 → u32 (IEEE-754 total order over finite values):
/// flips negative patterns so integer comparison matches float comparison.
fn to_ordered(x: f32) -> u32 {
    let b = x.to_bits();
    if b & 0x8000_0000 != 0 {
        !b
    } else {
        b | 0x8000_0000
    }
}

/// Inverse of [`to_ordered`].
fn from_ordered(o: u32) -> f32 {
    if o & 0x8000_0000 != 0 {
        f32::from_bits(o & 0x7FFF_FFFF)
    } else {
        f32::from_bits(!o)
    }
}

/// Smallest ordered key in `(lo, hi]` where `pred` holds, assuming `pred`
/// is monotone (false below the boundary, true at and above it).
fn lowest_ordered_with(pred: impl Fn(f32) -> bool, mut lo: u32, mut hi: u32) -> u32 {
    debug_assert!(!pred(from_ordered(lo)) && pred(from_ordered(hi)));
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if pred(from_ordered(mid)) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Half-width of the dense ULP verification window around each boundary.
const ULP_WINDOW: u32 = 4096;

/// Coarse-grid verification points across the active range.
const GRID_POINTS: usize = 50_000;

/// Derives the threshold form of `levels` and verifies it against the
/// reference quantizer; falls back to the scalar form on any disagreement.
fn derive_quantizer(levels: QuantLevels) -> LatentQuantizer {
    // The quantizer saturates far inside ±64 (tanh is ±1 to the last ULP
    // by ±20); if even the rails disagree, something is deeply odd — use
    // the scalar form.
    let (rail_lo, rail_hi) = (-64.0f32, 64.0f32);
    if levels.quantize(rail_hi) != 1 || levels.quantize(rail_lo) != -1 {
        return LatentQuantizer::Scalar(levels);
    }
    let plus_min_ord = lowest_ordered_with(
        |x| levels.quantize(x) == 1,
        to_ordered(rail_lo),
        to_ordered(rail_hi),
    );
    let minus_max_ord = lowest_ordered_with(
        |x| levels.quantize(x) > -1,
        to_ordered(rail_lo),
        to_ordered(rail_hi),
    ) - 1;
    let candidate = LatentQuantizer::Thresholds {
        plus_min: from_ordered(plus_min_ord),
        minus_max: from_ordered(minus_max_ord),
    };

    // Dense ULP windows around both boundaries: the only region where an
    // FP-non-monotone libm could misclassify by a hair.
    for center in [plus_min_ord, minus_max_ord] {
        let lo = center.saturating_sub(ULP_WINDOW);
        let hi = center.saturating_add(ULP_WINDOW);
        for o in lo..=hi {
            let x = from_ordered(o);
            if candidate.quantize(x) != levels.quantize(x) {
                return LatentQuantizer::Scalar(levels);
            }
        }
    }
    // Coarse grid across the active range, plus the rails.
    for i in 0..=GRID_POINTS {
        let x = -8.0 + 16.0 * i as f32 / GRID_POINTS as f32;
        if candidate.quantize(x) != levels.quantize(x) {
            return LatentQuantizer::Scalar(levels);
        }
    }
    for x in [rail_lo, -32.0, -16.0, 16.0, 32.0, rail_hi, 0.0, -0.0] {
        if candidate.quantize(x) != levels.quantize(x) {
            return LatentQuantizer::Scalar(levels);
        }
    }
    candidate
}

/// Derivation + verification runs once per process per level family; every
/// compile after that reads the cached constants.
pub(crate) fn quantizer_for(levels: QuantLevels) -> LatentQuantizer {
    use std::sync::OnceLock;
    static TWO: OnceLock<LatentQuantizer> = OnceLock::new();
    static THREE: OnceLock<LatentQuantizer> = OnceLock::new();
    match levels {
        QuantLevels::Two => *TWO.get_or_init(|| derive_quantizer(levels)),
        QuantLevels::Three => *THREE.get_or_init(|| derive_quantizer(levels)),
    }
}

/// Open-addressing map from packed code keys to symbol ids: two flat
/// arrays, one multiply-shift hash, linear probing. Capacity is a power of
/// two at least twice the symbol count, so probes terminate fast.
#[derive(Clone, Debug)]
pub(crate) struct SymbolTable {
    mask: usize,
    keys: Vec<u128>,
    vals: Vec<u16>,
}

/// Unreachable key sentinel: with ≤ 64 digits each packed as `level + 1 ∈
/// {0, 1, 2}`, no 2-bit field is ever `0b11`, so an all-ones key cannot be
/// produced by [`SymbolTable::pack`].
const EMPTY_KEY: u128 = u128::MAX;

impl SymbolTable {
    /// Packs quantized digits (each in `{−1, 0, 1}`) into a key; `None`
    /// for digits outside the packed range or widths over 64 (such codes
    /// can never be emitted by the quantizer, so they are unmatchable).
    #[inline]
    pub(crate) fn pack(digits: &[i8]) -> Option<u128> {
        if digits.len() > 64 {
            return None;
        }
        let mut key: u128 = 0;
        let mut ok = true;
        for (i, &d) in digits.iter().enumerate() {
            ok &= (-1..=1).contains(&d);
            key |= (((d as i32 + 1) as u128) & 0b11) << (2 * i);
        }
        ok.then_some(key)
    }

    #[inline]
    fn slot_of(&self, key: u128) -> usize {
        let folded = (key as u64) ^ ((key >> 64) as u64) ^ (key as u64).rotate_left(32);
        (folded.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    /// Builds the table over the symbol codes, in id order. Duplicate
    /// codes keep the *later* id — the same tie-break as collecting the
    /// codes into a `HashMap`, which is what the interpreter's index does.
    fn build(fsm: &Fsm, latent_dim: usize) -> Self {
        let cap = (fsm.symbols.len().max(1) * 2).next_power_of_two().max(8);
        let mut table = Self {
            mask: cap - 1,
            keys: vec![EMPTY_KEY; cap],
            vals: vec![0; cap],
        };
        for (id, sym) in fsm.symbols.iter().enumerate() {
            if sym.code.len() != latent_dim {
                continue; // quantizer output width never matches
            }
            let Some(key) = Self::pack(&sym.code.0) else {
                continue; // out-of-range digits are unmatchable
            };
            let mut slot = table.slot_of(key);
            loop {
                if table.keys[slot] == EMPTY_KEY || table.keys[slot] == key {
                    table.keys[slot] = key;
                    table.vals[slot] = id as u16;
                    break;
                }
                slot = (slot + 1) & table.mask;
            }
        }
        table
    }

    /// Symbol id for an exact quantizer output, or `None` (unseen code).
    /// Reference form of the probe: the runtime packs inline and calls
    /// [`SymbolTable::lookup_key`]; the table tests compare against this.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub(crate) fn lookup(&self, digits: &[i8]) -> Option<u16> {
        let key = Self::pack(digits)?;
        self.lookup_key(key)
    }

    /// Probe by pre-packed key — the hot-path entry for codes packed
    /// inline during quantization (see `CompiledFsm::quantize_key`), which
    /// are in-range by construction and skip [`SymbolTable::pack`]'s
    /// validation.
    #[inline]
    pub(crate) fn lookup_key(&self, key: u128) -> Option<u16> {
        let mut slot = self.slot_of(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                return Some(self.vals[slot]);
            }
            if k == EMPTY_KEY {
                return None;
            }
            slot = (slot + 1) & self.mask;
        }
    }
}

/// Lowers `fsm` + `obs_qbn` into a [`CompiledFsm`] under `metric` /
/// `nn_matching` (the same knobs the interpreter takes — the compiled
/// machine is action- and stats-identical to an interpreter configured the
/// same way).
///
/// # Errors
/// Returns a [`CompileError`] for machines outside the compiled tier's
/// envelope (too many states/symbols for `u16`, latent width over 64,
/// inconsistent structure); the interpreter handles those.
pub fn compile_fsm(
    fsm: &Fsm,
    obs_qbn: &Qbn,
    metric: Metric,
    nn_matching: bool,
) -> Result<CompiledFsm, CompileError> {
    fsm.validate().map_err(CompileError::Invalid)?;
    let num_states = fsm.num_states();
    let num_symbols = fsm.num_symbols();
    if num_states > u16::MAX as usize {
        return Err(CompileError::TooManyStates(num_states));
    }
    if num_symbols > u16::MAX as usize {
        return Err(CompileError::TooManySymbols(num_symbols));
    }
    let latent_dim = obs_qbn.config().latent_dim;
    if latent_dim > 64 {
        return Err(CompileError::LatentTooWide(latent_dim));
    }
    if let Some(first) = fsm.symbols.first() {
        let expected = first.centroid.len();
        if let Some(bad) = fsm.symbols.iter().find(|s| s.centroid.len() != expected) {
            return Err(CompileError::CentroidWidthMismatch {
                expected,
                found: bad.centroid.len(),
            });
        }
    }

    let index = fsm.index();
    let centroids = CentroidIndex::new(metric, fsm.symbols.iter().map(|s| s.centroid.as_slice()));
    let sym_table = SymbolTable::build(fsm, latent_dim);
    let quantizer = quantizer_for(obs_qbn.config().levels);

    // Dense tables: every (state, symbol) slot resolved now. The fallback
    // query is the resolved symbol's centroid — a pure function of the
    // discrete pair, matching the interpreter's missing-transition path.
    let mut next = vec![0u16; num_states * num_symbols];
    let mut tags = vec![SlotTag::Stuck as u8; num_states * num_symbols];
    for s in 0..num_states {
        let outgoing = index.symbols_from(s);
        for o in 0..num_symbols {
            let slot = s * num_symbols + o;
            if let Some(dst) = fsm.next_state(s, o) {
                next[slot] = dst as u16;
                tags[slot] = SlotTag::Observed as u8;
            } else if nn_matching && !outgoing.is_empty() {
                let fallback = centroids
                    .closest_among(&fsm.symbols[o].centroid, outgoing)
                    .expect("outgoing symbol set is non-empty");
                next[slot] = fsm
                    .next_state(s, fallback)
                    .expect("fallback symbol has a transition") as u16;
                tags[slot] = SlotTag::Missing as u8;
            } else {
                next[slot] = s as u16; // hold state (stuck)
            }
        }
    }

    let actions = fsm.states.iter().map(|st| st.action as u16).collect();
    Ok(CompiledFsm::from_parts(
        obs_qbn.clone(),
        quantizer,
        sym_table,
        centroids,
        next,
        tags,
        actions,
        num_symbols,
        fsm.initial_state as u16,
        nn_matching,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahd_qbn::Code;

    #[test]
    fn derived_thresholds_match_reference_quantizer() {
        for levels in [QuantLevels::Two, QuantLevels::Three] {
            let q = quantizer_for(levels);
            assert!(
                matches!(q, LatentQuantizer::Thresholds { .. }),
                "{levels:?} should lower to thresholds on this libm"
            );
            // Dense sweep well past the window the derivation checked.
            for i in 0..200_001 {
                let x = -10.0 + 20.0 * i as f32 / 200_000.0;
                assert_eq!(q.quantize(x), levels.quantize(x), "at {x}");
            }
        }
    }

    #[test]
    fn pack_is_injective_over_valid_digits() {
        let mut seen = std::collections::HashSet::new();
        // All 3^5 five-digit codes pack to distinct keys.
        for n in 0..243 {
            let digits: Vec<i8> = (0..5)
                .map(|i| ((n / 3_usize.pow(i)) % 3) as i8 - 1)
                .collect();
            assert!(seen.insert(SymbolTable::pack(&digits).unwrap()));
        }
        assert_eq!(SymbolTable::pack(&[2]), None, "out-of-range digit");
        assert_eq!(SymbolTable::pack(&[0; 65]), None, "too wide");
        assert_ne!(SymbolTable::pack(&[1; 64]).unwrap(), EMPTY_KEY);
    }

    #[test]
    fn symbol_table_agrees_with_hashmap_probe() {
        use crate::machine::testutil::two_state_fsm;
        let mut fsm = two_state_fsm();
        fsm.symbols[0].code = Code(vec![1, 0, -1]);
        fsm.symbols[1].code = Code(vec![-1, -1, 1]);
        let table = SymbolTable::build(&fsm, 3);
        assert_eq!(table.lookup(&[1, 0, -1]), Some(0));
        assert_eq!(table.lookup(&[-1, -1, 1]), Some(1));
        assert_eq!(table.lookup(&[0, 0, 0]), None);
    }

    #[test]
    fn duplicate_codes_keep_the_later_id_like_the_interpreter() {
        use crate::machine::testutil::two_state_fsm;
        let mut fsm = two_state_fsm();
        fsm.symbols[0].code = Code(vec![1, 1]);
        fsm.symbols[1].code = Code(vec![1, 1]);
        let table = SymbolTable::build(&fsm, 2);
        let index = fsm.index();
        assert_eq!(
            table.lookup(&[1, 1]).map(usize::from),
            index.symbol_by_digits(&[1, 1])
        );
    }
}
