//! The compiled FSM decision tier: the runtime counterpart of the
//! [`crate::compile`] lowering pass.
//!
//! Where the interpreted [`crate::FsmExecutor`] resolves each observation
//! through `Qbn::encode` (heap-allocated [`lahd_qbn::Code`]), a
//! `HashMap<Code, usize>` probe and, on fallback, fresh nearest-neighbour
//! scans, a [`CompiledFsm`] runs the per-decision loop over flat
//! precomputed arrays:
//!
//! * encode: the QBN's two GEMVs into a caller-owned scratch (zero
//!   allocation), then two-compare threshold quantization instead of libm
//!   `tanh` chains;
//! * symbol lookup: one `u128` pack + one multiply-shift probe over two
//!   flat arrays;
//! * transition: a single read from a dense `state × symbol` table whose
//!   slots already contain the nearest-neighbour fallback answers, so the
//!   match path is two array indexes with no per-step branching on
//!   transition presence.
//!
//! Every step also reports *why* its slot answered (observed / missing /
//! stuck) plus whether the code was unseen, so callers reconstruct the
//! interpreter's [`crate::FsmRunStats`] exactly — the compiled ≡
//! interpreted equivalence pins check actions *and* stats.

use lahd_qbn::{EncodeScratch, Qbn};
use lahd_tensor::Matrix;

use crate::compile::{LatentQuantizer, SymbolTable};
use crate::matching::CentroidIndex;
use crate::policy::FsmRunStats;

/// Rows per encode chunk in [`CompiledFsm::step_batch`]. Must stay below
/// `lahd_tensor::gemm::BLOCK_MIN_ROWS` so the batched encode takes the
/// per-row GEMV path and stays bit-identical to single-step encoding; 8
/// matches the GEMM micro-kernel row block.
const BATCH_CHUNK: usize = 8;

/// Provenance of a dense-table slot (or runtime outcome): how the
/// transition for a `(state, symbol)` pair was resolved at compile time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SlotTag {
    /// The pair was observed at extraction time; the slot is the recorded
    /// successor.
    Observed = 0,
    /// No recorded transition; the slot holds the precomputed §3.2.2
    /// nearest-neighbour fallback answer.
    Missing = 1,
    /// No fallback possible (NN matching off, or the state has no outgoing
    /// transitions): the slot holds the state itself.
    Stuck = 2,
}

impl SlotTag {
    #[inline]
    fn from_u8(v: u8) -> Self {
        match v {
            0 => SlotTag::Observed,
            1 => SlotTag::Missing,
            _ => SlotTag::Stuck,
        }
    }
}

/// The result of one compiled step: everything a caller needs to advance
/// its cursor and maintain interpreter-identical statistics.
#[derive(Clone, Copy, Debug)]
pub struct StepOutcome {
    /// State after the transition.
    pub next_state: u16,
    /// Action index emitted by the new state.
    pub action: u16,
    /// Whether the quantized code missed the symbol table (the
    /// interpreter's `unseen_observations` event).
    pub unseen: bool,
    /// How the transition was resolved.
    pub tag: SlotTag,
}

/// Caller-owned scratch for [`CompiledFsm::step`]: the QBN encode staging,
/// so the steady-state step allocates nothing.
pub struct CompiledScratch {
    enc: EncodeScratch,
}

/// Caller-owned scratch for [`CompiledFsm::step_batch`]: fixed
/// [`BATCH_CHUNK`]-row staging matrices for the SoA batched encode.
pub struct BatchScratch {
    x: Matrix,
    h: Matrix,
    pre: Matrix,
}

/// An [`crate::Fsm`] lowered by [`crate::compile_fsm`] into flat tables:
/// threshold quantizer, packed symbol table, shared centroid index and a
/// dense transition table with fallbacks precomputed into every slot.
///
/// The struct is immutable after compilation — episode state lives in a
/// [`CompiledCursor`] (or the caller's own `u16`), so one compiled machine
/// is freely shared across streams and threads (`Arc<CompiledFsm>`).
pub struct CompiledFsm {
    qbn: Qbn,
    quantizer: LatentQuantizer,
    sym_table: SymbolTable,
    centroids: CentroidIndex,
    /// Dense `state × symbol` successor table, row-major by state.
    next: Vec<u16>,
    /// Provenance tag per slot (`SlotTag` as `u8`).
    tags: Vec<u8>,
    /// Action index per state.
    actions: Vec<u16>,
    num_symbols: usize,
    initial_state: u16,
    nn_matching: bool,
}

impl CompiledFsm {
    /// Assembles a compiled machine from the lowering pass's artifacts.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        qbn: Qbn,
        quantizer: LatentQuantizer,
        sym_table: SymbolTable,
        centroids: CentroidIndex,
        next: Vec<u16>,
        tags: Vec<u8>,
        actions: Vec<u16>,
        num_symbols: usize,
        initial_state: u16,
        nn_matching: bool,
    ) -> Self {
        debug_assert_eq!(next.len(), actions.len() * num_symbols);
        debug_assert_eq!(tags.len(), next.len());
        Self {
            qbn,
            quantizer,
            sym_table,
            centroids,
            next,
            tags,
            actions,
            num_symbols,
            initial_state,
            nn_matching,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.actions.len()
    }

    /// Number of observation symbols.
    pub fn num_symbols(&self) -> usize {
        self.num_symbols
    }

    /// Observation width the embedded QBN encodes.
    pub fn input_dim(&self) -> usize {
        self.qbn.config().input_dim
    }

    /// Start state.
    pub fn initial_state(&self) -> u16 {
        self.initial_state
    }

    /// Whether the §3.2.2 nearest-neighbour fallback is active.
    pub fn nn_matching(&self) -> bool {
        self.nn_matching
    }

    /// Number of dense-table slots carrying each provenance tag
    /// `(observed, missing, stuck)` — compile-time generalisation shape of
    /// the machine, reported by eval tooling.
    pub fn slot_counts(&self) -> (usize, usize, usize) {
        let mut counts = [0usize; 3];
        for &t in &self.tags {
            counts[SlotTag::from_u8(t) as usize] += 1;
        }
        (counts[0], counts[1], counts[2])
    }

    /// A scratch sized for this machine's single-step path.
    pub fn make_scratch(&self) -> CompiledScratch {
        CompiledScratch {
            enc: self.qbn.make_encode_scratch(),
        }
    }

    /// A scratch sized for this machine's batched path.
    pub fn make_batch_scratch(&self) -> BatchScratch {
        let cfg = self.qbn.config();
        BatchScratch {
            x: Matrix::zeros(BATCH_CHUNK, cfg.input_dim),
            h: Matrix::zeros(BATCH_CHUNK, cfg.hidden_dim),
            pre: Matrix::zeros(BATCH_CHUNK, cfg.latent_dim),
        }
    }

    /// Quantizes latent pre-activations and packs the digits into a symbol
    /// key in one pass — no i8 staging buffer between the quantizer and
    /// the table probe. Identical to `SymbolTable::pack(quantize(pre))`:
    /// quantizer digits are always in `{−1, 0, 1}` and the compile
    /// envelope caps `latent_dim` at 64, so the validating pack can never
    /// reject what this produces.
    #[inline]
    fn quantize_key(&self, pre: &[f32]) -> u128 {
        // Accumulate in u64 halves (≤ 32 digits each): every shift/or stays
        // a single-register op, and machines with latent_dim ≤ 32 — all of
        // them in practice — never touch the high half.
        let (lo_digits, hi_digits) = pre.split_at(pre.len().min(32));
        let mut lo: u64 = 0;
        for (i, &p) in lo_digits.iter().enumerate() {
            let d = self.quantizer.quantize(p);
            lo |= ((d as i32 + 1) as u64) << (2 * i);
        }
        let mut hi: u64 = 0;
        for (i, &p) in hi_digits.iter().enumerate() {
            let d = self.quantizer.quantize(p);
            hi |= ((d as i32 + 1) as u64) << (2 * i);
        }
        ((hi as u128) << 64) | lo as u128
    }

    /// Resolves a packed code key (with `v` for the unseen fallback) from
    /// `state` through the dense table.
    #[inline]
    fn resolve(&self, v: &[f32], key: u128, state: u16) -> StepOutcome {
        let (symbol, unseen) = match self.sym_table.lookup_key(key) {
            Some(sym) => (Some(sym), false),
            None => {
                // Unseen code: nearest centroid to the *continuous*
                // observation, exactly like the interpreter (§3.2.2).
                let sym = if self.nn_matching {
                    self.centroids.closest(v).map(|i| i as u16)
                } else {
                    None
                };
                (sym, true)
            }
        };
        match symbol {
            Some(sym) => {
                let slot = state as usize * self.num_symbols + sym as usize;
                let next_state = self.next[slot];
                StepOutcome {
                    next_state,
                    action: self.actions[next_state as usize],
                    unseen,
                    tag: SlotTag::from_u8(self.tags[slot]),
                }
            }
            None => StepOutcome {
                next_state: state,
                action: self.actions[state as usize],
                unseen,
                tag: SlotTag::Stuck,
            },
        }
    }

    /// One decision: encodes `v`, resolves the symbol and reads the dense
    /// table. Allocation-free; `&self`, so shared machines step
    /// concurrently with per-caller scratches.
    ///
    /// # Panics
    /// Panics if `v` is not the machine's input width or the scratch was
    /// built for another machine.
    #[inline]
    pub fn step(&self, v: &[f32], state: u16, scratch: &mut CompiledScratch) -> StepOutcome {
        let pre = self.qbn.latent_preact_into(v, &mut scratch.enc);
        let key = self.quantize_key(pre);
        self.resolve(v, key, state)
    }

    /// Batched decisions: runs the QBN encode over [`BATCH_CHUNK`]-row SoA
    /// chunks (amortising weight traffic across streams) and resolves each
    /// row against its own cursor state from `states`. Appends one outcome
    /// per observation to `out` in order. Results are bit-identical to
    /// calling [`CompiledFsm::step`] per row: the chunked encode stays on
    /// the per-row GEMV path and the quantizer/table logic is shared.
    ///
    /// # Panics
    /// Panics if the observation count differs from `states.len()` or any
    /// row is not the machine's input width.
    pub fn step_batch<'a>(
        &self,
        obs: impl IntoIterator<Item = &'a [f32]>,
        states: &[u16],
        scratch: &mut BatchScratch,
        out: &mut Vec<StepOutcome>,
    ) {
        let mut it = obs.into_iter();
        let mut base = 0usize;
        loop {
            // Stage up to BATCH_CHUNK rows. Rows past the staged count keep
            // stale values; the per-row encode makes them harmless.
            let mut k = 0;
            while k < BATCH_CHUNK {
                let Some(v) = it.next() else { break };
                scratch.x.row_mut(k).copy_from_slice(v);
                k += 1;
            }
            if k == 0 {
                break;
            }
            assert!(
                base + k <= states.len(),
                "more observations than cursor states"
            );
            self.qbn
                .latent_preact_rows_into(&scratch.x, &mut scratch.h, &mut scratch.pre);
            for i in 0..k {
                let key = self.quantize_key(scratch.pre.row(i));
                out.push(self.resolve(scratch.x.row(i), key, states[base + i]));
            }
            base += k;
            if k < BATCH_CHUNK {
                break;
            }
        }
        assert_eq!(base, states.len(), "observation/state count mismatch");
    }
}

/// A [`CompiledCursor`] flattened to plain-old-data fields, the exact
/// round-trippable image `save`/`restore` exchange. Everything a stream's
/// FSM execution needs to resume is these four words — the property the
/// serving layer's cold-stream hibernation leans on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SavedCursor {
    /// Current state id.
    pub state: u16,
    /// Per-episode statistics.
    pub stats: FsmRunStats,
    /// Lifetime unseen-observation count.
    pub unseen_total: u64,
}

/// Episode state over a shared [`CompiledFsm`]: current state plus the
/// interpreter-compatible statistics, reconstructed from [`StepOutcome`]s.
#[derive(Clone, Debug)]
pub struct CompiledCursor {
    state: u16,
    stats: FsmRunStats,
    unseen_total: u64,
}

impl CompiledCursor {
    /// A cursor at the machine's start state.
    pub fn new(fsm: &CompiledFsm) -> Self {
        Self {
            state: fsm.initial_state(),
            stats: FsmRunStats::default(),
            unseen_total: 0,
        }
    }

    /// Resets for a new episode: back to the start state, per-episode stats
    /// cleared. The lifetime unseen counter survives, mirroring
    /// [`crate::FsmExecutor::unseen_count`].
    pub fn reset(&mut self, fsm: &CompiledFsm) {
        self.state = fsm.initial_state();
        self.stats = FsmRunStats::default();
    }

    /// Current state id (feed this to the next step).
    pub fn state(&self) -> u16 {
        self.state
    }

    /// Per-episode statistics, identical in meaning to
    /// [`crate::FsmExecutor::stats`].
    pub fn stats(&self) -> FsmRunStats {
        self.stats
    }

    /// Lifetime unseen-observation count (survives [`CompiledCursor::reset`]).
    pub fn unseen_count(&self) -> u64 {
        self.unseen_total
    }

    /// Captures the cursor as plain-old-data for external storage (a
    /// hibernation arena, a checkpoint file). `restore` round-trips
    /// exactly, so a saved-and-restored cursor continues the run with
    /// byte-identical actions and statistics.
    pub fn save(&self) -> SavedCursor {
        SavedCursor {
            state: self.state,
            stats: self.stats,
            unseen_total: self.unseen_total,
        }
    }

    /// Rebuilds a cursor from [`CompiledCursor::save`] output. The caller
    /// is responsible for pairing it with the same machine: state ids are
    /// meaningless across machines (hot reload must drop saved cursors).
    pub fn restore(saved: SavedCursor) -> Self {
        Self {
            state: saved.state,
            stats: saved.stats,
            unseen_total: saved.unseen_total,
        }
    }

    /// Folds a step outcome into the cursor; returns the action index.
    #[inline]
    pub fn apply(&mut self, outcome: StepOutcome) -> usize {
        self.stats.steps += 1;
        if outcome.unseen {
            self.stats.unseen_observations += 1;
            self.unseen_total += 1;
        }
        match outcome.tag {
            SlotTag::Observed => {}
            SlotTag::Missing => self.stats.missing_transitions += 1,
            SlotTag::Stuck => self.stats.stuck_steps += 1,
        }
        self.state = outcome.next_state;
        outcome.action as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_fsm;
    use crate::machine::testutil::two_state_fsm;
    use crate::matching::Metric;
    use lahd_qbn::{Code, QbnConfig};

    fn toy_compiled(nn: bool) -> (CompiledFsm, Qbn) {
        let qbn = Qbn::new(QbnConfig::with_dims(2, 1), 5);
        let mut fsm = two_state_fsm();
        // Align symbol 0's code with a real encoder output so the exact
        // path fires for at least one input, and keep symbol 1 distinct so
        // the duplicate-code tie-break doesn't shadow symbol 0.
        fsm.symbols[0].code = qbn.encode(&[0.9, -0.4]);
        let other = if fsm.symbols[0].code.0[0] == 0 { 1 } else { 0 };
        fsm.symbols[1].code = Code(vec![other]);
        let compiled = compile_fsm(&fsm, &qbn, Metric::Euclidean, nn).unwrap();
        (compiled, qbn)
    }

    #[test]
    fn exact_match_follows_the_recorded_transition() {
        let (compiled, _qbn) = toy_compiled(true);
        let mut scratch = compiled.make_scratch();
        let out = compiled.step(&[0.9, -0.4], 0, &mut scratch);
        assert_eq!(out.next_state, 1, "state 0 + symbol 0 goes to state 1");
        assert_eq!(out.action, 1);
        assert!(!out.unseen);
        assert_eq!(out.tag, SlotTag::Observed);
    }

    #[test]
    fn cursor_reconstructs_interpreter_stats() {
        let (compiled, _qbn) = toy_compiled(true);
        let mut scratch = compiled.make_scratch();
        let mut cursor = CompiledCursor::new(&compiled);
        for v in [[0.9f32, -0.4], [0.1, 0.1], [-0.8, 0.7], [0.9, -0.4]] {
            let out = compiled.step(&v, cursor.state(), &mut scratch);
            cursor.apply(out);
        }
        let stats = cursor.stats();
        assert_eq!(stats.steps, 4);
        assert_eq!(
            stats.unseen_observations as u64,
            cursor.unseen_count(),
            "first episode: lifetime and episode counters agree"
        );
        cursor.reset(&compiled);
        assert_eq!(cursor.stats().steps, 0);
        assert_eq!(cursor.state(), compiled.initial_state());
    }

    #[test]
    fn saved_cursor_roundtrips_and_resumes_identically() {
        let (compiled, _qbn) = toy_compiled(true);
        let mut scratch = compiled.make_scratch();
        let inputs = [[0.9f32, -0.4], [0.1, 0.1], [-0.8, 0.7], [0.9, -0.4]];
        let mut live = CompiledCursor::new(&compiled);
        for v in &inputs[..2] {
            let out = compiled.step(v, live.state(), &mut scratch);
            live.apply(out);
        }
        // Park the cursor mid-run, then resume the restored copy alongside
        // the live one: actions, stats, and lifetime counters must match
        // at every remaining step.
        let mut restored = CompiledCursor::restore(live.save());
        assert_eq!(restored.save(), live.save());
        for v in &inputs[2..] {
            let a = compiled.step(v, live.state(), &mut scratch);
            let b = compiled.step(v, restored.state(), &mut scratch);
            assert_eq!(live.apply(a), restored.apply(b));
        }
        assert_eq!(restored.save(), live.save());
        assert_eq!(restored.stats(), live.stats());
        assert_eq!(restored.unseen_count(), live.unseen_count());
    }

    #[test]
    fn step_batch_is_bit_identical_to_scalar_steps() {
        for nn in [false, true] {
            let (compiled, _qbn) = toy_compiled(nn);
            let mut scratch = compiled.make_scratch();
            let mut batch_scratch = compiled.make_batch_scratch();
            // 19 rows: crosses two full chunks plus a partial tail.
            let rows: Vec<Vec<f32>> = (0..19)
                .map(|i| vec![(i as f32) * 0.17 - 1.5, 0.9 - (i as f32) * 0.11])
                .collect();
            let states: Vec<u16> = (0..19).map(|i| (i % 2) as u16).collect();
            let mut batched = Vec::new();
            compiled.step_batch(
                rows.iter().map(Vec::as_slice),
                &states,
                &mut batch_scratch,
                &mut batched,
            );
            assert_eq!(batched.len(), rows.len());
            for (i, (v, &s)) in rows.iter().zip(&states).enumerate() {
                let scalar = compiled.step(v, s, &mut scratch);
                assert_eq!(batched[i].next_state, scalar.next_state, "row {i}");
                assert_eq!(batched[i].action, scalar.action, "row {i}");
                assert_eq!(batched[i].unseen, scalar.unseen, "row {i}");
                assert_eq!(batched[i].tag, scalar.tag, "row {i}");
            }
        }
    }

    #[test]
    fn unseen_without_nn_holds_state_as_stuck() {
        // Codes the encoder can never emit: every observation is unseen.
        let qbn = Qbn::new(QbnConfig::with_dims(2, 1), 5);
        let mut fsm = two_state_fsm();
        fsm.symbols[0].code = Code(vec![100]);
        fsm.symbols[1].code = Code(vec![101]);
        let compiled = compile_fsm(&fsm, &qbn, Metric::Euclidean, false).unwrap();
        let mut scratch = compiled.make_scratch();
        let out = compiled.step(&[0.3, 0.3], 1, &mut scratch);
        assert!(out.unseen);
        assert_eq!(out.tag, SlotTag::Stuck);
        assert_eq!(out.next_state, 1, "holds its state");
    }

    #[test]
    fn slot_counts_cover_the_dense_table() {
        let (compiled, _qbn) = toy_compiled(true);
        let (observed, missing, stuck) = compiled.slot_counts();
        assert_eq!(
            observed + missing + stuck,
            compiled.num_states() * compiled.num_symbols()
        );
        assert_eq!(observed, 4, "the toy machine records all four pairs");
    }
}
