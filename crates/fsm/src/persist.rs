//! Line-oriented text persistence for extracted machines.
//!
//! The FSM is the paper's deliverable artifact — the white-box strategy that
//! ships to the storage product — so it serialises to a format a human (or a
//! review process) can read:
//!
//! ```text
//! lahd-fsm v1
//! states <n> initial <id>
//! state <id> <action> <support> <hidden-code>
//! symbols <m>
//! symbol <id> <support> <obs-code> <centroid f32...>
//! transitions <k>
//! trans <from> <symbol> <to> <count>
//! end
//! ```

use std::collections::HashMap;
use std::io::{self, BufRead, Write};

use lahd_qbn::Code;

use crate::machine::{Fsm, FsmState, ObsSymbol};

const MAGIC: &str = "lahd-fsm v1";

/// Errors from reading an FSM file.
#[derive(Debug)]
pub enum FsmPersistError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Structural problem with the file.
    Format(String),
}

impl std::fmt::Display for FsmPersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsmPersistError::Io(e) => write!(f, "io error: {e}"),
            FsmPersistError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for FsmPersistError {}

impl From<io::Error> for FsmPersistError {
    fn from(e: io::Error) -> Self {
        FsmPersistError::Io(e)
    }
}

/// Writes `fsm` in the documented text format.
pub fn write_fsm(fsm: &Fsm, out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "{MAGIC}")?;
    writeln!(
        out,
        "states {} initial {}",
        fsm.num_states(),
        fsm.initial_state
    )?;
    for (i, s) in fsm.states.iter().enumerate() {
        writeln!(
            out,
            "state {i} {} {} {}",
            s.action,
            s.support,
            s.code.compact()
        )?;
    }
    writeln!(out, "symbols {}", fsm.num_symbols())?;
    for (i, s) in fsm.symbols.iter().enumerate() {
        write!(out, "symbol {i} {} {}", s.support, s.code.compact())?;
        for v in &s.centroid {
            write!(out, " {v:e}")?;
        }
        writeln!(out)?;
    }
    // Sort transitions for byte-stable output.
    let mut entries: Vec<_> = fsm.transitions.iter().collect();
    entries.sort_by_key(|(&k, _)| k);
    writeln!(out, "transitions {}", entries.len())?;
    for (&(s, o), &(n, c)) in entries {
        writeln!(out, "trans {s} {o} {n} {c}")?;
    }
    writeln!(out, "end")?;
    Ok(())
}

/// Reads a machine written by [`write_fsm`].
pub fn read_fsm(input: &mut impl BufRead) -> Result<Fsm, FsmPersistError> {
    let mut lines = input.lines();
    let mut next_line = move || -> Result<String, FsmPersistError> {
        lines
            .next()
            .ok_or_else(|| FsmPersistError::Format("unexpected end of file".into()))?
            .map_err(FsmPersistError::Io)
    };

    if next_line()?.trim() != MAGIC {
        return Err(FsmPersistError::Format("bad magic line".into()));
    }

    // states header
    let header = next_line()?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 4 || parts[0] != "states" || parts[2] != "initial" {
        return Err(FsmPersistError::Format(format!(
            "bad states header: {header}"
        )));
    }
    let num_states: usize = parse(parts[1], "state count")?;
    let initial_state: usize = parse(parts[3], "initial state")?;

    let mut states = Vec::with_capacity(num_states);
    for _ in 0..num_states {
        let line = next_line()?;
        let p: Vec<&str> = line.split_whitespace().collect();
        if p.len() != 5 || p[0] != "state" {
            return Err(FsmPersistError::Format(format!("bad state line: {line}")));
        }
        states.push(FsmState {
            action: parse(p[2], "action")?,
            support: parse(p[3], "support")?,
            code: Code::parse_compact(p[4])
                .map_err(|c| FsmPersistError::Format(format!("bad code char {c:?}")))?,
        });
    }

    // symbols
    let header = next_line()?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 2 || parts[0] != "symbols" {
        return Err(FsmPersistError::Format(format!(
            "bad symbols header: {header}"
        )));
    }
    let num_symbols: usize = parse(parts[1], "symbol count")?;
    let mut symbols = Vec::with_capacity(num_symbols);
    for _ in 0..num_symbols {
        let line = next_line()?;
        let p: Vec<&str> = line.split_whitespace().collect();
        if p.len() < 4 || p[0] != "symbol" {
            return Err(FsmPersistError::Format(format!("bad symbol line: {line}")));
        }
        let centroid = p[4..]
            .iter()
            .map(|t| t.parse::<f32>())
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| FsmPersistError::Format(format!("bad centroid in: {line}")))?;
        symbols.push(ObsSymbol {
            support: parse(p[2], "support")?,
            code: Code::parse_compact(p[3])
                .map_err(|c| FsmPersistError::Format(format!("bad code char {c:?}")))?,
            centroid,
        });
    }

    // transitions
    let header = next_line()?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 2 || parts[0] != "transitions" {
        return Err(FsmPersistError::Format(format!(
            "bad transitions header: {header}"
        )));
    }
    let num_transitions: usize = parse(parts[1], "transition count")?;
    let mut transitions = HashMap::with_capacity(num_transitions);
    for _ in 0..num_transitions {
        let line = next_line()?;
        let p: Vec<&str> = line.split_whitespace().collect();
        if p.len() != 5 || p[0] != "trans" {
            return Err(FsmPersistError::Format(format!(
                "bad transition line: {line}"
            )));
        }
        transitions.insert(
            (parse(p[1], "from")?, parse(p[2], "symbol")?),
            (parse(p[3], "to")?, parse(p[4], "count")?),
        );
    }

    if next_line()?.trim() != "end" {
        return Err(FsmPersistError::Format("missing end terminator".into()));
    }

    let fsm = Fsm {
        states,
        symbols,
        transitions,
        initial_state,
    };
    fsm.validate().map_err(FsmPersistError::Format)?;
    Ok(fsm)
}

fn parse(tok: &str, what: &str) -> Result<usize, FsmPersistError> {
    tok.parse()
        .map_err(|_| FsmPersistError::Format(format!("bad {what}: {tok:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::testutil::two_state_fsm;

    #[test]
    fn roundtrip_preserves_everything() {
        let fsm = two_state_fsm();
        let mut buf = Vec::new();
        write_fsm(&fsm, &mut buf).unwrap();
        let restored = read_fsm(&mut buf.as_slice()).unwrap();
        assert_eq!(restored.num_states(), fsm.num_states());
        assert_eq!(restored.initial_state, fsm.initial_state);
        assert_eq!(restored.transitions, fsm.transitions);
        for (a, b) in fsm.states.iter().zip(&restored.states) {
            assert_eq!(a.code, b.code);
            assert_eq!(a.action, b.action);
            assert_eq!(a.support, b.support);
        }
        for (a, b) in fsm.symbols.iter().zip(&restored.symbols) {
            assert_eq!(a.code, b.code);
            assert_eq!(a.support, b.support);
            assert_eq!(a.centroid, b.centroid);
        }
    }

    #[test]
    fn output_is_byte_stable() {
        let fsm = two_state_fsm();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_fsm(&fsm, &mut a).unwrap();
        write_fsm(&fsm, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_fsm(&mut "nope\n".as_bytes()).unwrap_err();
        assert!(matches!(err, FsmPersistError::Format(_)));
    }

    #[test]
    fn rejects_truncation() {
        let fsm = two_state_fsm();
        let mut buf = Vec::new();
        write_fsm(&fsm, &mut buf).unwrap();
        for cut in [10, buf.len() / 2, buf.len() - 5] {
            assert!(
                read_fsm(&mut &buf[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn rejects_inconsistent_machine() {
        // Hand-craft a file with a transition to a missing state.
        let text = "lahd-fsm v1\nstates 1 initial 0\nstate 0 0 1 +\nsymbols 1\nsymbol 0 1 + 0.5\ntransitions 1\ntrans 0 0 7 1\nend\n";
        assert!(read_fsm(&mut text.as_bytes()).is_err());
    }
}
