//! Graphviz DOT export of extracted machines (the paper's Figure 5 artwork).

use std::fmt::Write as _;

use crate::machine::Fsm;

/// Renders the machine as a Graphviz digraph.
///
/// * node label: `S<i>\n<action name>`;
/// * node pen width scales with the state's share of transitions (the
///   paper's "thickness of circle denotes how many transitions are
///   associated with the state");
/// * edge label: observed transition count; parallel symbol edges between
///   the same state pair are merged and their counts summed.
///
/// `action_names[i]` names action index `i` (e.g. `Noop`, `N=>R`).
pub fn to_dot(fsm: &Fsm, action_names: &[String]) -> String {
    let total: usize = fsm.states.iter().map(|s| s.support).sum();
    let mut out = String::new();
    out.push_str("digraph extracted_fsm {\n");
    out.push_str("  rankdir=LR;\n  node [shape=circle, fontsize=11];\n");

    for (i, s) in fsm.states.iter().enumerate() {
        let share = if total > 0 {
            s.support as f64 / total as f64
        } else {
            0.0
        };
        let penwidth = 1.0 + 6.0 * share;
        let action = action_names
            .get(s.action)
            .map(String::as_str)
            .unwrap_or("?");
        let _ = writeln!(
            out,
            "  s{i} [label=\"S{i}\\n{action}\", penwidth={penwidth:.2}];"
        );
    }

    // Merge parallel edges (many symbols may drive the same state pair).
    let mut merged: std::collections::BTreeMap<(usize, usize), usize> =
        std::collections::BTreeMap::new();
    for (&(src, _), &(dst, count)) in &fsm.transitions {
        *merged.entry((src, dst)).or_insert(0) += count;
    }
    for ((src, dst), count) in merged {
        let _ = writeln!(out, "  s{src} -> s{dst} [label=\"{count}\"];");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::testutil::two_state_fsm;

    fn names() -> Vec<String> {
        vec!["Noop".into(), "N=>K".into()]
    }

    #[test]
    fn dot_contains_all_states_and_actions() {
        let dot = to_dot(&two_state_fsm(), &names());
        assert!(dot.contains("s0 [label=\"S0\\nNoop\""));
        assert!(dot.contains("s1 [label=\"S1\\nN=>K\""));
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn parallel_edges_are_merged_with_summed_counts() {
        let dot = to_dot(&two_state_fsm(), &names());
        // (0,1)→0 count 5 and (1,1)→1 count 3 are self-loops; (0,0)→1
        // count 10 and (1,0)→0 count 8 are the cross edges.
        assert!(dot.contains("s0 -> s1 [label=\"10\"]"));
        assert!(dot.contains("s1 -> s0 [label=\"8\"]"));
        assert!(dot.contains("s0 -> s0 [label=\"5\"]"));
    }

    #[test]
    fn busier_states_draw_thicker() {
        let dot = to_dot(&two_state_fsm(), &names());
        let pw = |state: &str| -> f64 {
            let line = dot.lines().find(|l| l.contains(state)).unwrap();
            let idx = line.find("penwidth=").unwrap() + "penwidth=".len();
            line[idx..].trim_end_matches("];").parse().unwrap()
        };
        assert!(pw("s0 [") > pw("s1 ["));
    }

    #[test]
    fn unknown_action_index_renders_placeholder() {
        let dot = to_dot(&two_state_fsm(), &[]);
        assert!(dot.contains("\\n?\""));
    }
}
