//! Finite state machines extracted from recurrent storage-tuning policies —
//! the white-box deliverable of *Learning-Aided Heuristics Design for
//! Storage System* (SIGMOD 2021).
//!
//! The crate covers §3.2–3.3 of the paper plus the evaluation baselines:
//!
//! * [`Fsm`] — the Moore machine over quantized hidden-state codes (states)
//!   and quantized observation codes (symbols);
//! * [`extract_fsm`] — builds the machine from a QBN-quantized transition
//!   dataset;
//! * [`minimize`] — partition-refinement minimisation (merging
//!   behaviourally equivalent states, as in Koul et al.);
//! * [`FsmPolicy`] — executes the machine against the simulator, with the
//!   paper's nearest-neighbour fallback ([`Metric`]) for unseen
//!   observations;
//! * [`DefaultPolicy`] / [`HandcraftedFsm`] — the paper's comparison
//!   baselines (no migration; min-util → max-util migration);
//! * [`interpret_states`] / [`history_window`] — the fan-in/fan-out and
//!   history analyses of §3.3 (Figures 5 and 6);
//! * [`to_dot`] — Graphviz export; [`write_fsm`]/[`read_fsm`] — the
//!   human-reviewable text persistence format;
//! * [`compile_fsm`] / [`CompiledFsm`] — the load-time lowering pass and
//!   its flat-table runtime: threshold quantization, packed symbol lookup
//!   and a dense transition table with §3.2.2 fallbacks precomputed into
//!   every slot, plus an SoA batch evaluator for the serving tier.

mod baselines;
mod compile;
mod compiled;
mod dot;
mod extract;
mod interpret;
mod machine;
mod matching;
mod minimize;
mod persist;
mod policy;

pub use baselines::{ConstantPolicy, DefaultPolicy, HandcraftedFsm};
pub use compile::{compile_fsm, CompileError};
pub use compiled::{
    BatchScratch, CompiledCursor, CompiledFsm, CompiledScratch, SavedCursor, SlotTag, StepOutcome,
};
pub use dot::to_dot;
pub use extract::extract_fsm;
pub use interpret::{
    edge_profiles, history_window, interpret_states, EdgeProfile, StateInterpretation,
};
pub use machine::{Fsm, FsmIndex, FsmState, ObsSymbol};
pub use matching::{CentroidIndex, Metric};
pub use minimize::{merge_compatible, minimize};
pub use persist::{read_fsm, write_fsm, FsmPersistError};
pub use policy::{FsmExecutor, FsmPolicy, FsmRunStats, Policy, TrajStep, Trajectory, VecPolicy};

// Re-exported so downstream crates that build executors (the serving
// daemon, eval harnesses) can name the observation encoder's type without
// depending on lahd-qbn directly.
pub use lahd_qbn::Qbn;
