//! Interpretation of extracted states (paper §3.3).
//!
//! Two complementary analyses explain what each FSM state *means*:
//!
//! 1. **Fan-in / fan-out statistics** — the average continuous observation
//!    on transitions *into* and *out of* each state (self-transitions are
//!    excluded, per the paper). The action the state emits is what causes
//!    the shift between its fan-in and fan-out averages.
//! 2. **History windows** — the average of the last `W` observations before
//!    each entry into a state, explaining what drives the transition
//!    (Figure 6 plots this for S2).

use crate::policy::Trajectory;

/// Fan-in/fan-out interpretation of one FSM state.
#[derive(Clone, Debug)]
pub struct StateInterpretation {
    /// State id.
    pub state: usize,
    /// Action the state emits.
    pub action: usize,
    /// Steps that ended in this state (including self-transitions) — the
    /// "thickness" of the circle in the paper's Figure 5.
    pub visits: usize,
    /// Entries from a *different* state.
    pub entries: usize,
    /// Exits to a *different* state.
    pub exits: usize,
    /// Mean observation over entry transitions (empty if none).
    pub fan_in_mean: Vec<f32>,
    /// Mean observation over exit transitions (empty if none).
    pub fan_out_mean: Vec<f32>,
}

impl StateInterpretation {
    /// Per-dimension difference fan-out − fan-in: how the environment moved
    /// while the state's action was applied. Empty when either side has no
    /// samples.
    pub fn reaction(&self) -> Vec<f32> {
        if self.fan_in_mean.is_empty() || self.fan_out_mean.is_empty() {
            return Vec::new();
        }
        self.fan_out_mean
            .iter()
            .zip(&self.fan_in_mean)
            .map(|(o, i)| o - i)
            .collect()
    }
}

/// Computes fan-in/fan-out statistics for every state in `0..num_states`.
///
/// `state_actions[s]` is the action emitted by state `s` (from the FSM).
pub fn interpret_states(
    traj: &Trajectory,
    num_states: usize,
    state_actions: &[usize],
) -> Vec<StateInterpretation> {
    assert_eq!(
        state_actions.len(),
        num_states,
        "one action per state required"
    );
    let obs_dim = traj.steps.first().map_or(0, |s| s.obs.len());
    let mut fan_in_sum = vec![vec![0.0f64; obs_dim]; num_states];
    let mut fan_out_sum = vec![vec![0.0f64; obs_dim]; num_states];
    let mut entries = vec![0usize; num_states];
    let mut exits = vec![0usize; num_states];
    let mut visits = vec![0usize; num_states];

    for step in &traj.steps {
        visits[step.to_state] += 1;
        if step.from_state != step.to_state {
            // The observation triggering the entry is the fan-in of the
            // target state and the fan-out of the source state.
            entries[step.to_state] += 1;
            exits[step.from_state] += 1;
            for (acc, &v) in fan_in_sum[step.to_state].iter_mut().zip(&step.obs) {
                *acc += f64::from(v);
            }
            for (acc, &v) in fan_out_sum[step.from_state].iter_mut().zip(&step.obs) {
                *acc += f64::from(v);
            }
        }
    }

    (0..num_states)
        .map(|s| StateInterpretation {
            state: s,
            action: state_actions[s],
            visits: visits[s],
            entries: entries[s],
            exits: exits[s],
            fan_in_mean: mean_or_empty(&fan_in_sum[s], entries[s]),
            fan_out_mean: mean_or_empty(&fan_out_sum[s], exits[s]),
        })
        .collect()
}

fn mean_or_empty(sum: &[f64], count: usize) -> Vec<f32> {
    if count == 0 {
        Vec::new()
    } else {
        sum.iter().map(|&s| (s / count as f64) as f32).collect()
    }
}

/// Average history window before entries into `state`: element `w` of the
/// result is the mean observation `window − w` steps *before* the entry
/// (so the last element is the observation immediately before entry).
///
/// Entries closer than `window` steps to the episode start are skipped, as
/// are self-transitions. Returns an empty vector if no qualifying entry
/// exists.
pub fn history_window(traj: &Trajectory, state: usize, window: usize) -> Vec<Vec<f32>> {
    assert!(window > 0, "window must be positive");
    let obs_dim = traj.steps.first().map_or(0, |s| s.obs.len());
    let mut sums = vec![vec![0.0f64; obs_dim]; window];
    let mut count = 0usize;

    for (i, step) in traj.steps.iter().enumerate() {
        if step.to_state != state || step.from_state == state || i < window {
            continue;
        }
        count += 1;
        for (sum_row, step) in sums.iter_mut().zip(&traj.steps[i - window..i]) {
            for (acc, &v) in sum_row.iter_mut().zip(&step.obs) {
                *acc += f64::from(v);
            }
        }
    }

    if count == 0 {
        return Vec::new();
    }
    sums.into_iter()
        .map(|row| row.into_iter().map(|s| (s / count as f64) as f32).collect())
        .collect()
}

/// Profile of one directed edge of the executed machine — the labelled
/// arrows of the paper's Figure 5.
#[derive(Clone, Debug)]
pub struct EdgeProfile {
    /// Source state.
    pub from: usize,
    /// Target state.
    pub to: usize,
    /// Times the edge fired.
    pub count: usize,
    /// Mean continuous observation over the firings.
    pub mean_obs: Vec<f32>,
}

/// Aggregates every `(from, to)` pair that fired in the trajectory
/// (self-loops included), with the average observation that triggered it.
/// Sorted by firing count, descending — the thickest arrows first.
pub fn edge_profiles(traj: &Trajectory) -> Vec<EdgeProfile> {
    use std::collections::HashMap;
    let obs_dim = traj.steps.first().map_or(0, |s| s.obs.len());
    let mut acc: HashMap<(usize, usize), (usize, Vec<f64>)> = HashMap::new();
    for step in &traj.steps {
        let entry = acc
            .entry((step.from_state, step.to_state))
            .or_insert_with(|| (0, vec![0.0; obs_dim]));
        entry.0 += 1;
        for (a, &v) in entry.1.iter_mut().zip(&step.obs) {
            *a += f64::from(v);
        }
    }
    let mut edges: Vec<EdgeProfile> = acc
        .into_iter()
        .map(|((from, to), (count, sums))| EdgeProfile {
            from,
            to,
            count,
            mean_obs: sums.iter().map(|&s| (s / count as f64) as f32).collect(),
        })
        .collect();
    edges.sort_by_key(|e| (std::cmp::Reverse(e.count), e.from, e.to));
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::TrajStep;

    fn step(t: usize, from: usize, to: usize, obs: Vec<f32>) -> TrajStep {
        TrajStep {
            t,
            from_state: from,
            symbol: Some(0),
            to_state: to,
            obs,
            action: 0,
        }
    }

    fn sample_traj() -> Trajectory {
        // 0→0 (self), 0→1 (entry obs [1,0]), 1→1 (self), 1→0 (entry [0,1]).
        Trajectory {
            steps: vec![
                step(0, 0, 0, vec![0.5, 0.5]),
                step(1, 0, 1, vec![1.0, 0.0]),
                step(2, 1, 1, vec![0.9, 0.1]),
                step(3, 1, 0, vec![0.0, 1.0]),
            ],
        }
    }

    #[test]
    fn fan_in_excludes_self_transitions() {
        let interp = interpret_states(&sample_traj(), 2, &[0, 1]);
        // State 1 entered once with obs [1, 0].
        assert_eq!(interp[1].entries, 1);
        assert_eq!(interp[1].fan_in_mean, vec![1.0, 0.0]);
        // Its only exit carried [0, 1].
        assert_eq!(interp[1].exits, 1);
        assert_eq!(interp[1].fan_out_mean, vec![0.0, 1.0]);
    }

    #[test]
    fn visits_count_all_arrivals() {
        let interp = interpret_states(&sample_traj(), 2, &[0, 1]);
        assert_eq!(interp[0].visits, 2); // self-loop + re-entry
        assert_eq!(interp[1].visits, 2);
    }

    #[test]
    fn reaction_is_fan_out_minus_fan_in() {
        let interp = interpret_states(&sample_traj(), 2, &[0, 1]);
        assert_eq!(interp[1].reaction(), vec![-1.0, 1.0]);
    }

    #[test]
    fn reaction_empty_without_entries() {
        let traj = Trajectory {
            steps: vec![step(0, 0, 0, vec![1.0])],
        };
        let interp = interpret_states(&traj, 1, &[0]);
        assert!(interp[0].reaction().is_empty());
    }

    #[test]
    fn history_window_averages_preceding_steps() {
        // Build: [a, b, entry into 1], window 2 → rows = obs of steps 0,1.
        let traj = Trajectory {
            steps: vec![
                step(0, 0, 0, vec![1.0, 0.0]),
                step(1, 0, 0, vec![0.0, 1.0]),
                step(2, 0, 1, vec![0.5, 0.5]),
            ],
        };
        let h = history_window(&traj, 1, 2);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0], vec![1.0, 0.0]);
        assert_eq!(h[1], vec![0.0, 1.0]);
    }

    #[test]
    fn history_skips_entries_too_close_to_start() {
        let traj = Trajectory {
            steps: vec![step(0, 0, 1, vec![1.0])],
        };
        assert!(history_window(&traj, 1, 3).is_empty());
    }

    #[test]
    fn edge_profiles_aggregate_and_sort() {
        let traj = Trajectory {
            steps: vec![
                step(0, 0, 1, vec![1.0, 0.0]),
                step(1, 1, 0, vec![0.0, 1.0]),
                step(2, 0, 1, vec![3.0, 0.0]),
                step(3, 1, 1, vec![9.0, 9.0]),
            ],
        };
        let edges = edge_profiles(&traj);
        assert_eq!(edges.len(), 3);
        // The 0→1 edge fired twice and sorts first.
        assert_eq!((edges[0].from, edges[0].to, edges[0].count), (0, 1, 2));
        assert_eq!(edges[0].mean_obs, vec![2.0, 0.0]);
        // Self-loops are included.
        assert!(edges.iter().any(|e| e.from == 1 && e.to == 1));
    }

    #[test]
    fn edge_profiles_of_empty_trajectory_is_empty() {
        assert!(edge_profiles(&Trajectory::default()).is_empty());
    }

    #[test]
    fn history_averages_across_multiple_entries() {
        let traj = Trajectory {
            steps: vec![
                step(0, 0, 0, vec![2.0]),
                step(1, 0, 1, vec![0.0]), // entry 1, history = [2.0]
                step(2, 1, 0, vec![4.0]),
                step(3, 0, 1, vec![0.0]), // entry 2, history = [4.0]
            ],
        };
        let h = history_window(&traj, 1, 1);
        assert_eq!(h.len(), 1);
        assert_eq!(h[0], vec![3.0]);
    }
}
