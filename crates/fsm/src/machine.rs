//! The extracted finite state machine (a Moore machine over quantized
//! observation symbols).

use std::collections::HashMap;

use lahd_qbn::Code;

/// One FSM state: a quantized hidden-state code with the action it emits.
#[derive(Clone, Debug)]
pub struct FsmState {
    /// The quantized hidden code this state was built from (representative
    /// code after minimisation).
    pub code: Code,
    /// Index of the action this state emits (every state corresponds to one
    /// unique action, paper §3.3).
    pub action: usize,
    /// Number of dataset transitions that land in this state.
    pub support: usize,
}

/// One observation symbol: a quantized observation code plus the centroid of
/// the continuous observations that produced it (used for nearest-neighbour
/// generalisation, paper §3.2.2).
#[derive(Clone, Debug)]
pub struct ObsSymbol {
    /// Quantized observation code.
    pub code: Code,
    /// Mean continuous observation vector over all occurrences.
    pub centroid: Vec<f32>,
    /// Number of dataset occurrences.
    pub support: usize,
}

/// A Moore machine extracted from a recurrent policy.
#[derive(Clone, Debug, Default)]
pub struct Fsm {
    /// States in id order.
    pub states: Vec<FsmState>,
    /// Observation symbols in id order.
    pub symbols: Vec<ObsSymbol>,
    /// `(state, symbol) → (next_state, observed_count)`.
    pub transitions: HashMap<(usize, usize), (usize, usize)>,
    /// Start state (the quantized initial hidden state).
    pub initial_state: usize,
}

impl Fsm {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of observation symbols.
    pub fn num_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// Number of distinct transition entries.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// The successor of `(state, symbol)` if the pair was observed.
    pub fn next_state(&self, state: usize, symbol: usize) -> Option<usize> {
        self.transitions.get(&(state, symbol)).map(|&(s, _)| s)
    }

    /// Action emitted by `state`.
    pub fn action_of(&self, state: usize) -> usize {
        self.states[state].action
    }

    /// Looks up a symbol id by its quantized code.
    ///
    /// One-shot convenience (linear scan). Anything that resolves codes in
    /// a loop — execution, extraction consistency checks, the compile pass
    /// — should build an [`FsmIndex`] once via [`Fsm::index`] and query
    /// that instead.
    pub fn symbol_by_code(&self, code: &Code) -> Option<usize> {
        self.symbols.iter().position(|s| &s.code == code)
    }

    /// Symbols that have an outgoing transition from `state`.
    ///
    /// One-shot convenience (scans every transition). Per-state queries in
    /// a loop should go through [`FsmIndex::symbols_from`], which
    /// partitions the transition keys once.
    pub fn symbols_from(&self, state: usize) -> Vec<usize> {
        self.transitions
            .keys()
            .filter(|&&(s, _)| s == state)
            .map(|&(_, sym)| sym)
            .collect()
    }

    /// Builds the reusable lookup index over this machine's current
    /// contents. The fields of [`Fsm`] are public and mutable, so the index
    /// is a snapshot: rebuild it after structural edits.
    pub fn index(&self) -> FsmIndex {
        let by_code = self
            .symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (s.code.clone(), i))
            .collect();
        let mut state_symbols = vec![Vec::new(); self.states.len()];
        for &(s, o) in self.transitions.keys() {
            state_symbols[s].push(o);
        }
        for syms in &mut state_symbols {
            syms.sort_unstable();
        }
        FsmIndex {
            by_code,
            state_symbols,
        }
    }

    /// Total observed transition count (dataset size it was built from).
    pub fn total_transition_count(&self) -> usize {
        self.transitions.values().map(|&(_, c)| c).sum()
    }

    /// Validates internal consistency (ids in range, non-empty).
    ///
    /// # Errors
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.states.is_empty() {
            return Err("FSM has no states".into());
        }
        if self.initial_state >= self.states.len() {
            return Err("initial state out of range".into());
        }
        for (&(s, o), &(n, _)) in &self.transitions {
            if s >= self.states.len() || n >= self.states.len() {
                return Err(format!("transition ({s},{o})→{n} references missing state"));
            }
            if o >= self.symbols.len() {
                return Err(format!("transition ({s},{o}) references missing symbol"));
            }
        }
        Ok(())
    }
}

/// Index-once lookup structures over an [`Fsm`]: symbol id by quantized
/// code and the sorted outgoing-symbol list per state. Replaces the
/// per-call linear scans of [`Fsm::symbol_by_code`] /
/// [`Fsm::symbols_from`] everywhere those queries run in a loop (the
/// executor, the compile pass, eval tooling).
#[derive(Clone, Debug, Default)]
pub struct FsmIndex {
    by_code: HashMap<Code, usize>,
    state_symbols: Vec<Vec<usize>>,
}

impl FsmIndex {
    /// Symbol id for an exact quantized code.
    pub fn symbol_by_code(&self, code: &Code) -> Option<usize> {
        self.by_code.get(code).copied()
    }

    /// Symbol id for an exact code given as a raw digit slice — the
    /// zero-allocation probe the executor hot path uses (`Code` borrows as
    /// `[i8]`, so hashing is identical).
    pub fn symbol_by_digits(&self, digits: &[i8]) -> Option<usize> {
        self.by_code.get(digits).copied()
    }

    /// Symbols with an outgoing transition from `state`, ascending.
    pub fn symbols_from(&self, state: usize) -> &[usize] {
        &self.state_symbols[state]
    }

    /// Number of states the index was built over.
    pub fn num_states(&self) -> usize {
        self.state_symbols.len()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Builds a small hand-rolled FSM used by several test modules:
    ///
    /// ```text
    /// s0(action 0) --sym0--> s1(action 1) --sym0--> s0
    /// s0           --sym1--> s0
    /// s1           --sym1--> s1
    /// ```
    pub fn two_state_fsm() -> Fsm {
        let mut transitions = HashMap::new();
        transitions.insert((0, 0), (1, 10));
        transitions.insert((0, 1), (0, 5));
        transitions.insert((1, 0), (0, 8));
        transitions.insert((1, 1), (1, 3));
        Fsm {
            states: vec![
                FsmState {
                    code: Code(vec![0, 0]),
                    action: 0,
                    support: 15,
                },
                FsmState {
                    code: Code(vec![1, 0]),
                    action: 1,
                    support: 11,
                },
            ],
            symbols: vec![
                ObsSymbol {
                    code: Code(vec![1]),
                    centroid: vec![1.0, 0.0],
                    support: 18,
                },
                ObsSymbol {
                    code: Code(vec![-1]),
                    centroid: vec![0.0, 1.0],
                    support: 8,
                },
            ],
            transitions,
            initial_state: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::two_state_fsm;
    use super::*;

    #[test]
    fn lookup_and_counts() {
        let fsm = two_state_fsm();
        assert_eq!(fsm.num_states(), 2);
        assert_eq!(fsm.num_symbols(), 2);
        assert_eq!(fsm.num_transitions(), 4);
        assert_eq!(fsm.next_state(0, 0), Some(1));
        assert_eq!(fsm.next_state(1, 1), Some(1));
        assert_eq!(fsm.action_of(1), 1);
        assert_eq!(fsm.total_transition_count(), 26);
    }

    #[test]
    fn missing_transition_is_none() {
        let mut fsm = two_state_fsm();
        fsm.transitions.remove(&(1, 1));
        assert_eq!(fsm.next_state(1, 1), None);
    }

    #[test]
    fn symbol_lookup_by_code() {
        let fsm = two_state_fsm();
        assert_eq!(fsm.symbol_by_code(&Code(vec![-1])), Some(1));
        assert_eq!(fsm.symbol_by_code(&Code(vec![0])), None);
    }

    #[test]
    fn symbols_from_state() {
        let fsm = two_state_fsm();
        let mut syms = fsm.symbols_from(0);
        syms.sort_unstable();
        assert_eq!(syms, vec![0, 1]);
    }

    #[test]
    fn index_agrees_with_linear_scans() {
        let fsm = two_state_fsm();
        let idx = fsm.index();
        for (i, s) in fsm.symbols.iter().enumerate() {
            assert_eq!(idx.symbol_by_code(&s.code), Some(i));
            assert_eq!(idx.symbol_by_digits(&s.code.0), Some(i));
            assert_eq!(fsm.symbol_by_code(&s.code), Some(i));
        }
        assert_eq!(idx.symbol_by_code(&Code(vec![0])), None);
        for s in 0..fsm.num_states() {
            let mut scan = fsm.symbols_from(s);
            scan.sort_unstable();
            assert_eq!(idx.symbols_from(s), scan.as_slice());
        }
        assert_eq!(idx.num_states(), 2);
    }

    #[test]
    fn validate_accepts_consistent_machine() {
        two_state_fsm().validate().unwrap();
    }

    #[test]
    fn validate_rejects_dangling_transition() {
        let mut fsm = two_state_fsm();
        fsm.transitions.insert((0, 9), (1, 1));
        assert!(fsm.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_machine() {
        assert!(Fsm::default().validate().is_err());
    }
}
