//! FSM extraction from a quantized transition dataset (paper §3.2.1).
//!
//! Each dataset row `⟨h_t, h_{t+1}, o_t, a_t⟩` is quantized through the two
//! QBNs to `⟨b_h, b_h', b_o, a⟩`; interning the codes produces the state and
//! symbol sets, and the observed `(b_h, b_o) → b_h'` triples form the
//! transition table. Each state is labelled with the action the policy
//! emitted from it (majority vote over the dataset — in a converged
//! deterministic policy the vote is unanimous).

use std::collections::HashMap;

use lahd_qbn::{CodeBook, Qbn, TransitionDataset};

use crate::machine::{Fsm, FsmState, ObsSymbol};

/// Extracts the finite state machine implied by `dataset` under the two
/// quantizers.
///
/// `initial_hidden` is the policy's reset hidden state (all zeros for the
/// GRU); its code becomes the FSM start state.
///
/// # Panics
/// Panics if the dataset is empty or the QBN widths do not match the
/// dataset's.
pub fn extract_fsm(
    dataset: &TransitionDataset,
    obs_qbn: &Qbn,
    hidden_qbn: &Qbn,
    initial_hidden: &[f32],
) -> Fsm {
    assert!(
        !dataset.is_empty(),
        "cannot extract an FSM from an empty dataset"
    );
    assert_eq!(
        obs_qbn.config().input_dim,
        dataset.obs_dim(),
        "observation QBN width does not match dataset"
    );
    assert_eq!(
        hidden_qbn.config().input_dim,
        dataset.hidden_dim(),
        "hidden QBN width does not match dataset"
    );

    let mut states = CodeBook::new();
    let mut symbols = CodeBook::new();
    // Per-state action votes and support.
    let mut action_votes: Vec<HashMap<usize, usize>> = Vec::new();
    let mut state_support: Vec<usize> = Vec::new();
    // Per-symbol centroid accumulation.
    let mut symbol_sum: Vec<Vec<f64>> = Vec::new();
    let mut symbol_count: Vec<usize> = Vec::new();
    // (state, symbol) → successor vote counts.
    let mut transition_votes: HashMap<(usize, usize), HashMap<usize, usize>> = HashMap::new();

    let intern_state = |code: lahd_qbn::Code,
                        votes: &mut Vec<HashMap<usize, usize>>,
                        support: &mut Vec<usize>,
                        book: &mut CodeBook| {
        let id = book.intern(code);
        if id == votes.len() {
            votes.push(HashMap::new());
            support.push(0);
        }
        id
    };

    // Seed the start state so it exists even if no transition re-enters it.
    let start_code = hidden_qbn.encode(initial_hidden);
    let initial_state = intern_state(
        start_code,
        &mut action_votes,
        &mut state_support,
        &mut states,
    );

    for row in dataset.rows() {
        let s = intern_state(
            hidden_qbn.encode(&row.hidden),
            &mut action_votes,
            &mut state_support,
            &mut states,
        );
        let s_next = intern_state(
            hidden_qbn.encode(&row.next_hidden),
            &mut action_votes,
            &mut state_support,
            &mut states,
        );
        let o = symbols.intern(obs_qbn.encode(&row.obs));
        if o == symbol_sum.len() {
            symbol_sum.push(vec![0.0; dataset.obs_dim()]);
            symbol_count.push(0);
        }
        for (acc, &v) in symbol_sum[o].iter_mut().zip(&row.obs) {
            *acc += f64::from(v);
        }
        symbol_count[o] += 1;

        // The action is emitted from h_{t+1}, i.e. from the successor state.
        *action_votes[s_next].entry(row.action).or_insert(0) += 1;
        state_support[s_next] += 1;
        *transition_votes
            .entry((s, o))
            .or_default()
            .entry(s_next)
            .or_insert(0) += 1;
    }

    // Resolve votes.
    let fsm_states: Vec<FsmState> = states
        .iter()
        .map(|(id, code)| {
            let action = action_votes[id]
                .iter()
                .max_by_key(|&(_, &c)| c)
                .map(|(&a, _)| a)
                .unwrap_or(0); // states never entered (start only) default to action 0 (Noop)
            FsmState {
                code: code.clone(),
                action,
                support: state_support[id],
            }
        })
        .collect();

    let fsm_symbols: Vec<ObsSymbol> = symbols
        .iter()
        .map(|(id, code)| ObsSymbol {
            code: code.clone(),
            centroid: symbol_sum[id]
                .iter()
                .map(|&s| (s / symbol_count[id] as f64) as f32)
                .collect(),
            support: symbol_count[id],
        })
        .collect();

    let transitions = transition_votes
        .into_iter()
        .map(|((s, o), votes)| {
            let total: usize = votes.values().sum();
            let (&next, _) = votes
                .iter()
                .max_by_key(|&(_, &c)| c)
                .expect("non-empty votes");
            ((s, o), (next, total))
        })
        .collect();

    let fsm = Fsm {
        states: fsm_states,
        symbols: fsm_symbols,
        transitions,
        initial_state,
    };
    debug_assert!(fsm.validate().is_ok());
    fsm
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahd_qbn::{QbnConfig, TransitionRow};

    /// QBNs small enough that distinct inputs land on distinct codes without
    /// training (random projections preserve the cluster separation used
    /// below).
    fn qbns() -> (Qbn, Qbn) {
        // Seeds picked so the untrained random projections keep X/Y and
        // A/B/initial on distinct codes under the workspace RNG.
        let obs = Qbn::new(QbnConfig::with_dims(2, 6), 0);
        let hid = Qbn::new(QbnConfig::with_dims(3, 6), 1);
        (obs, hid)
    }

    fn dataset_two_phases() -> TransitionDataset {
        // Alternates between hidden clusters A=(2,0,0) and B=(0,2,0) driven
        // by observations X=(2,0) and Y=(0,2); action 0 in A, action 1 in B.
        let a = vec![2.0, 0.0, 0.0];
        let b = vec![0.0, 2.0, 0.0];
        let x = vec![2.0, 0.0];
        let y = vec![0.0, 2.0];
        let mut ds = TransitionDataset::new();
        for i in 0..20 {
            ds.push(TransitionRow {
                obs: if i % 2 == 0 { x.clone() } else { y.clone() },
                hidden: if i % 2 == 0 { a.clone() } else { b.clone() },
                next_hidden: if i % 2 == 0 { b.clone() } else { a.clone() },
                action: if i % 2 == 0 { 1 } else { 0 },
                episode: 0,
                step: i,
            });
        }
        ds
    }

    #[test]
    fn extraction_builds_expected_structure() {
        let (obs_qbn, hid_qbn) = qbns();
        let ds = dataset_two_phases();
        let fsm = extract_fsm(&ds, &obs_qbn, &hid_qbn, &[0.0, 0.0, 0.0]);
        fsm.validate().unwrap();
        // At least: initial state + clusters A and B (A may coincide with
        // the initial code only if the random projection collapses them,
        // which the magnitudes prevent).
        assert!(
            fsm.num_states() >= 2,
            "expected ≥ 2 states, got {}",
            fsm.num_states()
        );
        assert!(fsm.num_symbols() >= 2);
        assert!(fsm.num_transitions() >= 2);
    }

    #[test]
    fn actions_are_majority_labelled() {
        let (obs_qbn, hid_qbn) = qbns();
        let ds = dataset_two_phases();
        let fsm = extract_fsm(&ds, &obs_qbn, &hid_qbn, &[0.0, 0.0, 0.0]);
        // Find the states for clusters A and B via their codes.
        let code_a = hid_qbn.encode(&[2.0, 0.0, 0.0]);
        let code_b = hid_qbn.encode(&[0.0, 2.0, 0.0]);
        let sa = fsm.states.iter().position(|s| s.code == code_a).unwrap();
        let sb = fsm.states.iter().position(|s| s.code == code_b).unwrap();
        // Transitions into B carry action 1; into A carry action 0.
        assert_eq!(fsm.states[sb].action, 1);
        assert_eq!(fsm.states[sa].action, 0);
        assert_ne!(sa, sb);
    }

    #[test]
    fn symbol_centroids_average_observations() {
        let (obs_qbn, hid_qbn) = qbns();
        let ds = dataset_two_phases();
        let fsm = extract_fsm(&ds, &obs_qbn, &hid_qbn, &[0.0, 0.0, 0.0]);
        let x_code = obs_qbn.encode(&[2.0, 0.0]);
        let sym = fsm.symbol_by_code(&x_code).expect("X symbol exists");
        let c = &fsm.symbols[sym].centroid;
        assert!(
            (c[0] - 2.0).abs() < 1e-5 && c[1].abs() < 1e-5,
            "centroid {c:?}"
        );
    }

    #[test]
    fn deterministic_dataset_gives_deterministic_transitions() {
        let (obs_qbn, hid_qbn) = qbns();
        let ds = dataset_two_phases();
        let a = extract_fsm(&ds, &obs_qbn, &hid_qbn, &[0.0; 3]);
        let b = extract_fsm(&ds, &obs_qbn, &hid_qbn, &[0.0; 3]);
        assert_eq!(a.num_states(), b.num_states());
        assert_eq!(a.transitions.len(), b.transitions.len());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let (obs_qbn, hid_qbn) = qbns();
        let _ = extract_fsm(&TransitionDataset::new(), &obs_qbn, &hid_qbn, &[0.0; 3]);
    }
}
