//! Property pins: the compiled FSM tier is action- AND stats-identical to
//! the reference interpreter over randomly generated machines, QBNs,
//! metrics, NN-matching settings and precisions — including machines with
//! duplicate symbol codes, missing transitions and codes the encoder can
//! never emit.

use std::collections::HashMap;

use lahd_fsm::{CompiledCursor, Fsm, FsmExecutor, FsmState, Metric, ObsSymbol, SlotTag, VecPolicy};
use lahd_qbn::{Code, Precision, Qbn, QbnConfig, QuantLevels};
use proptest::prelude::*;
use proptest::{collection, option};

/// Everything one equivalence case needs.
struct Case {
    fsm: Fsm,
    qbn: Qbn,
    metric: Metric,
    nn: bool,
    obs: Vec<Vec<f32>>,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        1usize..=5, // states
        0usize..=6, // symbols
        2usize..=5, // observation width
        1usize..=3, // latent width
        0u64..512,  // QBN seed
        0usize..16, // knob bits: levels / precision / metric / nn
    )
        .prop_flat_map(|(ns, no, input_dim, latent_dim, seed, knobs)| {
            let structure = (
                collection::vec(0usize..4, ns),
                // Digit 2 is outside the encoder's range: exercises the
                // unmatchable-code handling on both paths.
                collection::vec(collection::vec(-1i8..=2, latent_dim), no),
                collection::vec(collection::vec(-1.0f32..1.0, input_dim), no),
            );
            let run = (
                collection::vec(option::of(0usize..ns), ns * no.max(1)),
                0usize..ns,
                collection::vec(collection::vec(-1.5f32..1.5, input_dim), 1..24),
            );
            (structure, run).prop_map(
                move |((actions, codes, centroids), (edges, initial, obs))| {
                    let states = actions
                        .iter()
                        .enumerate()
                        .map(|(i, &action)| FsmState {
                            code: Code(vec![i as i8]),
                            action,
                            support: 1,
                        })
                        .collect();
                    let symbols = codes
                        .into_iter()
                        .zip(centroids)
                        .map(|(code, centroid)| ObsSymbol {
                            code: Code(code),
                            centroid,
                            support: 1,
                        })
                        .collect();
                    let mut transitions = HashMap::new();
                    if no > 0 {
                        for (slot, dst) in edges.iter().enumerate() {
                            if let Some(dst) = dst {
                                transitions.insert((slot / no, slot % no), (*dst, 1));
                            }
                        }
                    }
                    let fsm = Fsm {
                        states,
                        symbols,
                        transitions,
                        initial_state: initial,
                    };
                    let mut cfg = QbnConfig::with_dims(input_dim, latent_dim);
                    cfg.levels = if knobs & 1 == 0 {
                        QuantLevels::Three
                    } else {
                        QuantLevels::Two
                    };
                    let mut qbn = Qbn::new(cfg, seed);
                    if knobs & 2 != 0 {
                        qbn.set_precision(Precision::QuantizedFast);
                    }
                    let metric = if knobs & 4 == 0 {
                        Metric::Euclidean
                    } else {
                        Metric::Cosine
                    };
                    Case {
                        fsm,
                        qbn,
                        metric,
                        nn: knobs & 8 != 0,
                        obs,
                    }
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Compiled executor ≡ interpreted executor: identical actions,
    /// per-episode stats and lifetime unseen counts, across resets.
    #[test]
    fn compiled_executor_matches_interpreter(case in case_strategy()) {
        let Case { fsm, qbn, metric, nn, obs } = case;
        let mut fast = FsmExecutor::new(fsm.clone(), qbn.clone(), metric, nn);
        let mut reference = FsmExecutor::interpreted(fsm, qbn, metric, nn);
        prop_assert!(fast.compiled().is_some(), "small machines always lower");
        for episode in 0..2 {
            for (i, v) in obs.iter().enumerate() {
                let a = fast.act_vec(v);
                let b = reference.act_vec(v);
                prop_assert_eq!(a, b, "action diverged at episode {} step {}", episode, i);
                prop_assert_eq!(
                    fast.current_state(),
                    reference.current_state(),
                    "state diverged at episode {} step {}",
                    episode,
                    i
                );
            }
            prop_assert_eq!(fast.stats(), reference.stats());
            prop_assert_eq!(fast.unseen_count(), reference.unseen_count());
            VecPolicy::reset(&mut fast);
            VecPolicy::reset(&mut reference);
        }
        prop_assert_eq!(fast.stats(), reference.stats(), "stats cleared on reset");
        prop_assert_eq!(fast.unseen_count(), reference.unseen_count());
    }

    /// The SoA batch evaluator ≡ scalar compiled steps ≡ the interpreter,
    /// with the cursor reconstructing identical stats.
    #[test]
    fn batch_evaluator_matches_scalar_and_interpreter(case in case_strategy()) {
        let Case { fsm, qbn, metric, nn, obs } = case;
        let mut reference = FsmExecutor::interpreted(fsm.clone(), qbn.clone(), metric, nn);
        let compiled = lahd_fsm::compile_fsm(&fsm, &qbn, metric, nn).unwrap();

        // Drive a sequential episode through the cursor to collect the
        // per-step input states, then replay the same (obs, state) pairs
        // through the batch evaluator.
        let mut scratch = compiled.make_scratch();
        let mut cursor = CompiledCursor::new(&compiled);
        let mut states = Vec::new();
        let mut scalar_actions = Vec::new();
        for v in &obs {
            states.push(cursor.state());
            let outcome = compiled.step(v, cursor.state(), &mut scratch);
            scalar_actions.push(cursor.apply(outcome));
        }

        let mut batch_scratch = compiled.make_batch_scratch();
        let mut outcomes = Vec::new();
        compiled.step_batch(
            obs.iter().map(Vec::as_slice),
            &states,
            &mut batch_scratch,
            &mut outcomes,
        );
        prop_assert_eq!(outcomes.len(), obs.len());

        let mut replay = CompiledCursor::new(&compiled);
        for (i, (v, outcome)) in obs.iter().zip(&outcomes).enumerate() {
            let action = replay.apply(*outcome);
            prop_assert_eq!(action, scalar_actions[i], "batch action diverged at {}", i);
            let b = reference.act_vec(v);
            prop_assert_eq!(action, b, "batch vs interpreter at {}", i);
            // Provenance tags are one of the three valid kinds.
            prop_assert!(matches!(
                outcome.tag,
                SlotTag::Observed | SlotTag::Missing | SlotTag::Stuck
            ));
        }
        prop_assert_eq!(replay.stats(), reference.stats());
        prop_assert_eq!(replay.stats(), cursor.stats());
        prop_assert_eq!(replay.unseen_count(), reference.unseen_count());
    }
}
