//! Steady-state allocation pins for the FSM decision paths.
//!
//! Both FSM execution paths sit on per-decision serving latency budgets:
//! the compiled tier by design, and the interpreter as its reference (and
//! fallback for machines outside the compiled envelope). After this PR,
//! neither touches the allocator in steady state — encode goes through
//! executor-owned scratches, symbol lookup probes by borrowed digit slice
//! (no owned `Code` per step), and fallbacks scan the flat centroid index.
//! A counting global allocator turns that into an assertion.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use lahd_fsm::{CompiledCursor, Fsm, FsmExecutor, FsmState, Metric, ObsSymbol, VecPolicy};
use lahd_qbn::{Code, Precision, Qbn, QbnConfig};

/// Counts allocations per thread while forwarding to the system allocator.
///
/// The counter must be thread-local: the libtest harness runs tests and
/// its own bookkeeping (result channels, output formatting) on parallel
/// threads, so a process-wide counter picks up their allocations inside a
/// pin's measured window and fails it spuriously. A const-initialized
/// `Cell` has no destructor and no lazy init, so reading it from inside
/// the allocator neither allocates nor recurses.
///
/// The workspace denies `unsafe_code`; this is an audited test-only
/// exception — `GlobalAlloc` is unsafe by signature, and the impl only
/// forwards to [`System`] unchanged.
#[allow(unsafe_code)]
mod counting {
    use super::*;

    thread_local! {
        static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
    }

    /// Allocations made by the calling thread so far.
    pub fn on_this_thread() -> usize {
        ALLOCATIONS.with(Cell::get)
    }

    fn bump() {
        // `try_with` so allocations during TLS teardown stay infallible.
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
    }

    pub struct CountingAllocator;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            bump();
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            bump();
            System.realloc(ptr, layout, new_size)
        }
    }
}

#[global_allocator]
static ALLOCATOR: counting::CountingAllocator = counting::CountingAllocator;

const INPUT_DIM: usize = 6;
const LATENT_DIM: usize = 4;

/// A machine whose runs hit all three resolution outcomes: one aligned
/// code (exact match), other inputs unseen (NN fallback), and a sparse
/// transition table (missing-transition fallback).
fn test_fsm(qbn: &Qbn) -> Fsm {
    let states = (0..3)
        .map(|i| FsmState {
            code: Code(vec![i as i8]),
            action: i % 2,
            support: 1,
        })
        .collect();
    let symbols = (0..4)
        .map(|i| ObsSymbol {
            code: if i == 0 {
                qbn.encode(&obs_row(0))
            } else {
                Code(vec![[1, -1, 0, 1][i]; LATENT_DIM])
            },
            centroid: (0..INPUT_DIM)
                .map(|j| (i * 7 + j) as f32 * 0.1 - 1.0)
                .collect(),
            support: 1,
        })
        .collect();
    let mut transitions = std::collections::HashMap::new();
    transitions.insert((0, 0), (1, 1));
    transitions.insert((1, 1), (2, 1));
    transitions.insert((2, 0), (0, 1));
    transitions.insert((2, 3), (1, 1));
    Fsm {
        states,
        symbols,
        transitions,
        initial_state: 0,
    }
}

fn obs_row(i: usize) -> Vec<f32> {
    (0..INPUT_DIM)
        .map(|j| ((i * INPUT_DIM + j) as f32 * 0.37).sin())
        .collect()
}

fn assert_executor_is_allocation_free(compiled: bool, precision: Precision) {
    let mut cfg = QbnConfig::with_dims(INPUT_DIM, LATENT_DIM);
    cfg.levels = lahd_qbn::QuantLevels::Three;
    let mut qbn = Qbn::new(cfg, 7);
    qbn.set_precision(precision);
    let fsm = test_fsm(&qbn);
    let mut exec = if compiled {
        let e = FsmExecutor::new(fsm, qbn, Metric::Euclidean, true);
        assert!(e.compiled().is_some(), "test machine must lower");
        e
    } else {
        FsmExecutor::interpreted(fsm, qbn, Metric::Euclidean, true)
    };
    let rows: Vec<Vec<f32>> = (0..8).map(obs_row).collect();

    // Warm-up (construction and first steps may allocate).
    for v in &rows {
        exec.act_vec(v);
    }

    let before = counting::on_this_thread();
    for _ in 0..50 {
        for v in &rows {
            exec.act_vec(v);
        }
    }
    let after = counting::on_this_thread();
    assert_eq!(
        after - before,
        0,
        "{} executor ({precision:?}) allocated {} time(s) in steady state",
        if compiled { "compiled" } else { "interpreted" },
        after - before
    );
    // The runs above exercised more than the exact-match path.
    assert!(exec.stats().unseen_observations > 0, "unseen path covered");
}

#[test]
fn compiled_executor_steps_are_allocation_free() {
    assert_executor_is_allocation_free(true, Precision::Exact);
    assert_executor_is_allocation_free(true, Precision::QuantizedFast);
}

#[test]
fn interpreted_executor_steps_are_allocation_free() {
    assert_executor_is_allocation_free(false, Precision::Exact);
    assert_executor_is_allocation_free(false, Precision::QuantizedFast);
}

/// The batch evaluator must also stay off the allocator once the caller's
/// outcome buffer has grown to the batch size.
#[test]
fn batch_evaluator_is_allocation_free_in_steady_state() {
    let qbn = Qbn::new(QbnConfig::with_dims(INPUT_DIM, LATENT_DIM), 7);
    let fsm = test_fsm(&qbn);
    let compiled = lahd_fsm::compile_fsm(&fsm, &qbn, Metric::Euclidean, true).unwrap();
    let mut scratch = compiled.make_batch_scratch();
    let mut cursors: Vec<CompiledCursor> =
        (0..13).map(|_| CompiledCursor::new(&compiled)).collect();
    let rows: Vec<Vec<f32>> = (0..13).map(obs_row).collect();
    let mut states: Vec<u16> = Vec::new();
    let mut outcomes = Vec::new();

    let mut run_batch = |states: &mut Vec<u16>,
                         outcomes: &mut Vec<lahd_fsm::StepOutcome>,
                         cursors: &mut Vec<CompiledCursor>| {
        states.clear();
        states.extend(cursors.iter().map(CompiledCursor::state));
        outcomes.clear();
        compiled.step_batch(
            rows.iter().map(Vec::as_slice),
            states,
            &mut scratch,
            outcomes,
        );
        for (c, &o) in cursors.iter_mut().zip(outcomes.iter()) {
            c.apply(o);
        }
    };

    for _ in 0..3 {
        run_batch(&mut states, &mut outcomes, &mut cursors);
    }
    let before = counting::on_this_thread();
    for _ in 0..50 {
        run_batch(&mut states, &mut outcomes, &mut cursors);
    }
    let after = counting::on_this_thread();
    assert_eq!(
        after - before,
        0,
        "batch evaluator allocated {} time(s) in steady state",
        after - before
    );
}
