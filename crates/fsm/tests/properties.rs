//! Property-based tests for machines, minimisation and matching.

use std::collections::HashMap;

use lahd_fsm::{merge_compatible, minimize, read_fsm, write_fsm, Fsm, FsmState, Metric, ObsSymbol};
use lahd_qbn::Code;
use proptest::prelude::*;

/// Strategy: a random consistent partial Moore machine.
fn fsm_strategy() -> impl Strategy<Value = Fsm> {
    (2usize..8, 2usize..6).prop_flat_map(|(num_states, num_symbols)| {
        let actions = proptest::collection::vec(0usize..4, num_states);
        // For each (state, symbol): Option<successor>.
        let transitions = proptest::collection::vec(
            proptest::option::of(0usize..num_states),
            num_states * num_symbols,
        );
        (actions, transitions, Just(num_states), Just(num_symbols)).prop_map(
            |(actions, transition_choices, num_states, num_symbols)| {
                let states = (0..num_states)
                    .map(|i| FsmState {
                        code: Code(vec![(i % 3) as i8 - 1, ((i / 3) % 3) as i8 - 1]),
                        action: actions[i],
                        support: i + 1,
                    })
                    .collect();
                let symbols = (0..num_symbols)
                    .map(|o| ObsSymbol {
                        code: Code(vec![(o % 3) as i8 - 1; 2]),
                        centroid: vec![o as f32, 1.0 - o as f32],
                        support: o + 1,
                    })
                    .collect();
                let mut transitions = HashMap::new();
                for s in 0..num_states {
                    for o in 0..num_symbols {
                        if let Some(dst) = transition_choices[s * num_symbols + o] {
                            transitions.insert((s, o), (dst, 1));
                        }
                    }
                }
                Fsm {
                    states,
                    symbols,
                    transitions,
                    initial_state: 0,
                }
            },
        )
    })
}

/// Runs a symbol string from the initial state, returning the emitted action
/// sequence; stops at the first undefined transition.
fn run_machine(fsm: &Fsm, symbols: &[usize]) -> Vec<usize> {
    let mut state = fsm.initial_state;
    let mut actions = Vec::new();
    for &o in symbols {
        let o = o % fsm.num_symbols().max(1);
        match fsm.next_state(state, o) {
            Some(next) => {
                state = next;
                actions.push(fsm.action_of(state));
            }
            None => break,
        }
    }
    actions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Strict minimisation is exactly behaviour preserving.
    #[test]
    fn minimize_preserves_behaviour(
        fsm in fsm_strategy(),
        input in proptest::collection::vec(0usize..6, 0..24),
    ) {
        let minimized = minimize(&fsm);
        minimized.validate().expect("minimized machine is consistent");
        prop_assert!(minimized.num_states() <= fsm.num_states());
        prop_assert_eq!(run_machine(&fsm, &input), run_machine(&minimized, &input));
    }

    /// Compatible merging preserves behaviour on every path that is
    /// *defined* in the original machine (it may define more).
    #[test]
    fn merge_compatible_preserves_defined_paths(
        fsm in fsm_strategy(),
        input in proptest::collection::vec(0usize..6, 0..24),
    ) {
        let merged = merge_compatible(&fsm);
        merged.validate().expect("merged machine is consistent");
        prop_assert!(merged.num_states() <= fsm.num_states());

        let original_run = run_machine(&fsm, &input);
        let merged_run = run_machine(&merged, &input);
        // The merged machine must reproduce at least the original's prefix.
        prop_assert!(merged_run.len() >= original_run.len());
        prop_assert_eq!(&merged_run[..original_run.len()], &original_run[..]);
    }

    /// Minimisation then compatible merging never increases state count and
    /// conserves total transition mass.
    #[test]
    fn reduction_pipeline_conserves_counts(fsm in fsm_strategy()) {
        let reduced = merge_compatible(&minimize(&fsm));
        prop_assert!(reduced.num_states() <= fsm.num_states());
        prop_assert_eq!(reduced.total_transition_count(), fsm.total_transition_count());
        let orig_support: usize = fsm.states.iter().map(|s| s.support).sum();
        let red_support: usize = reduced.states.iter().map(|s| s.support).sum();
        prop_assert_eq!(orig_support, red_support);
    }

    /// The persistence format round-trips arbitrary machines exactly.
    #[test]
    fn persist_roundtrip(fsm in fsm_strategy()) {
        let mut buf = Vec::new();
        write_fsm(&fsm, &mut buf).expect("serialise");
        let restored = read_fsm(&mut buf.as_slice()).expect("parse");
        prop_assert_eq!(restored.num_states(), fsm.num_states());
        prop_assert_eq!(restored.transitions, fsm.transitions);
        for (a, b) in fsm.symbols.iter().zip(&restored.symbols) {
            prop_assert_eq!(&a.code, &b.code);
            prop_assert_eq!(&a.centroid, &b.centroid);
        }
    }

    /// Metric axioms that the matching logic relies on.
    #[test]
    fn metric_axioms(
        (a, b) in (1usize..16).prop_flat_map(|n| {
            (
                proptest::collection::vec(-10.0f32..10.0, n),
                proptest::collection::vec(-10.0f32..10.0, n),
            )
        }),
    ) {
        for metric in [Metric::Euclidean, Metric::Cosine] {
            let d_ab = metric.distance(&a, &b);
            let d_ba = metric.distance(&b, &a);
            prop_assert!(d_ab >= -1e-5, "negative distance {d_ab}");
            prop_assert!((d_ab - d_ba).abs() < 1e-4, "asymmetric: {d_ab} vs {d_ba}");
            prop_assert!(metric.distance(&a, &a) < 1e-4);
        }
    }

    /// `closest` returns an index whose distance is minimal.
    #[test]
    fn closest_is_argmin(
        query in proptest::collection::vec(-5.0f32..5.0, 4),
        candidates in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 4),
            1..12,
        ),
    ) {
        let metric = Metric::Euclidean;
        let winner = metric
            .closest(&query, candidates.iter().enumerate().map(|(i, v)| (i, v.as_slice())))
            .expect("non-empty candidates");
        let winning_distance = metric.distance(&query, &candidates[winner]);
        for candidate in &candidates {
            prop_assert!(winning_distance <= metric.distance(&query, candidate) + 1e-5);
        }
    }
}
