//! Property-based tests for the guard's streaming statistics: the one-pass
//! estimators must agree with their batch counterparts on arbitrary data.

use lahd_guard::{
    exact_quantile, read_profile, write_profile, P2Quantile, StreamingProfile, Welford,
};
use proptest::prelude::*;

/// Strategy: a batch of 8–200 bounded samples.
fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e4f64..1e4, 8..200)
}

/// Strategy: an observation matrix as (dim, flat row-major values).
fn obs_matrix() -> impl Strategy<Value = (usize, Vec<f32>)> {
    (1usize..6)
        .prop_flat_map(|dim| {
            (
                Just(dim),
                proptest::collection::vec(-100.0f32..100.0, 10 * dim..160 * dim),
            )
        })
        .prop_map(|(dim, mut flat)| {
            flat.truncate(flat.len() / dim * dim);
            (dim, flat)
        })
}

fn batch_mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn batch_variance(xs: &[f64]) -> f64 {
    let m = batch_mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Welford's one-pass moments match the two-pass batch formulas to
    /// floating-point noise.
    #[test]
    fn welford_matches_batch_moments(xs in samples()) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        prop_assert_eq!(w.count(), xs.len() as u64);
        let mean = batch_mean(&xs);
        let var = batch_variance(&xs);
        let scale = 1.0 + mean.abs();
        prop_assert!(
            (w.mean() - mean).abs() <= 1e-9 * scale,
            "mean {} vs batch {}", w.mean(), mean
        );
        prop_assert!(
            (w.variance() - var).abs() <= 1e-6 * (1.0 + var),
            "variance {} vs batch {}", w.variance(), var
        );
    }

    /// The P² sketch lands near the exact empirical quantile. P² is an
    /// approximation, so the tolerance is loose: a fraction of the sample
    /// range (it is only used for order-of-magnitude drift scoring).
    #[test]
    fn p2_tracks_exact_quantiles_loosely(xs in samples(), pi in 0usize..3) {
        let p = [0.25, 0.5, 0.75][pi];
        let mut sketch = P2Quantile::new(p);
        for &x in &xs {
            sketch.push(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let exact = exact_quantile(&sorted, p);
        let range = sorted[sorted.len() - 1] - sorted[0];
        prop_assert!(
            (sketch.quantile() - exact).abs() <= 0.25 * range + 1e-9,
            "p{} sketch {} vs exact {} (range {})",
            p, sketch.quantile(), exact, range
        );
        // Whatever the data, the estimate stays inside the observed range.
        prop_assert!(sketch.quantile() >= sorted[0] - 1e-9);
        prop_assert!(sketch.quantile() <= sorted[sorted.len() - 1] + 1e-9);
    }

    /// A profile built by streaming rows one at a time agrees with batch
    /// statistics computed over the whole matrix at once: exactly for
    /// count/min/max, to float noise for the moments, and loosely for the
    /// sketched quartiles.
    #[test]
    fn streaming_profile_matches_batch((dim, flat) in obs_matrix()) {
        let rows: Vec<&[f32]> = flat.chunks_exact(dim).collect();
        let mut sp = StreamingProfile::new(dim);
        for row in &rows {
            sp.push(row);
        }
        let profile = sp.profile();
        prop_assert_eq!(profile.dim(), dim);
        prop_assert_eq!(profile.count, rows.len() as u64);

        for d in 0..dim {
            let mut col: Vec<f64> = rows.iter().map(|r| f64::from(r[d])).collect();
            col.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let p = &profile.dims[d];
            prop_assert_eq!(p.min, col[0]);
            prop_assert_eq!(p.max, col[col.len() - 1]);
            let mean = batch_mean(&col);
            prop_assert!(
                (p.mean - mean).abs() <= 1e-9 * (1.0 + mean.abs()),
                "dim {d}: mean {} vs batch {}", p.mean, mean
            );
            let std = batch_variance(&col).sqrt();
            prop_assert!(
                (p.std - std).abs() <= 1e-6 * (1.0 + std),
                "dim {d}: std {} vs batch {}", p.std, std
            );
            let range = col[col.len() - 1] - col[0];
            for (q, got) in [(0.25, p.p25), (0.5, p.p50), (0.75, p.p75)] {
                let exact = exact_quantile(&col, q);
                prop_assert!(
                    (got - exact).abs() <= 0.25 * range + 1e-9,
                    "dim {d}: p{q} {got} vs exact {exact}"
                );
            }
        }
    }

    /// Profiles survive the text serialisation bit-exactly (Rust float
    /// formatting round-trips).
    #[test]
    fn profile_serialisation_roundtrips((dim, flat) in obs_matrix()) {
        let mut sp = StreamingProfile::new(dim);
        for row in flat.chunks_exact(dim) {
            sp.push(row);
        }
        let profile = sp.profile();
        let mut buf = Vec::new();
        write_profile(&profile, &mut buf).expect("serialise");
        let restored = read_profile(&mut buf.as_slice()).expect("parse");
        prop_assert_eq!(restored, profile);
    }
}
