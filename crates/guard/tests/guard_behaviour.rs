//! End-to-end behaviour of the guard state machine over synthetic tier
//! ladders, where divergence and drift are under the test's direct control:
//! trip, fallback-only serving while degraded, escalation down the ladder,
//! stuck-input detection, and full recovery.

use lahd_fsm::VecPolicy;
use lahd_guard::{BaselineProfile, GuardConfig, GuardedPolicy, HealthState, StreamingProfile};

/// Chooses action 1 when `obs[0] > 0.5`, else 0 — the "primary" whose
/// agreement with the constant shadow is decided by the observation stream.
struct Threshold;

impl VecPolicy for Threshold {
    fn reset(&mut self) {}

    fn act_vec(&mut self, obs: &[f32]) -> usize {
        usize::from(obs[0] > 0.5)
    }

    fn name(&self) -> &str {
        "threshold"
    }
}

/// Always chooses `action`.
struct Constant(usize, &'static str);

impl VecPolicy for Constant {
    fn reset(&mut self) {}

    fn act_vec(&mut self, _obs: &[f32]) -> usize {
        self.0
    }

    fn name(&self) -> &str {
        self.1
    }
}

/// A 2-dim baseline covering the unit interval, so any observation in
/// [0, 1] is in-distribution and drift never interferes with the
/// divergence-driven tests.
fn unit_baseline() -> BaselineProfile {
    let mut sp = StreamingProfile::new(2);
    for i in 0..256 {
        let x = (i % 32) as f32 / 31.0;
        sp.push(&[x, 1.0 - x]);
    }
    sp.profile()
}

/// An in-distribution observation near `base`, wobbled so consecutive
/// observations are never identical (the stuck detector must stay quiet).
fn obs(i: u64, base: f32) -> Vec<f32> {
    let w = (i % 7) as f32 * 0.01;
    vec![base + w, 1.0 - base - w]
}

fn cfg() -> GuardConfig {
    GuardConfig::default()
}

#[test]
fn divergence_trips_fallback_serves_and_recovery_restores_primary() {
    let tiers: Vec<Box<dyn VecPolicy>> = vec![
        Box::new(Threshold),
        Box::new(Constant(0, "shadow-net")),
        Box::new(Constant(0, "last-resort")),
    ];
    let mut guard = GuardedPolicy::new(tiers, 1, unit_baseline(), cfg());

    // Disagreeing regime: primary says 1, shadow says 0, on every step.
    for _ in 0..32 {
        // Tier switches happen at flush boundaries inside act_vec, so the
        // tier that serves this step is the one active *before* the call.
        let serving = guard.active_tier();
        let action = guard.act_vec(&obs(guard.steps(), 0.8));
        if serving > 0 {
            assert_eq!(action, 0, "fallback tiers always answer 0");
        }
    }
    assert_eq!(
        guard.state(),
        HealthState::FallenBack,
        "tripped on divergence"
    );
    assert!(guard.active_tier() > 0, "a fallback tier is serving");

    // While degraded, only fallback tiers serve.
    let primary_steps_when_tripped = guard.snapshot().tier_steps[0];
    for _ in 0..64 {
        assert!(
            guard.active_tier() > 0,
            "degraded guard must not serve tier 0"
        );
        let action = guard.act_vec(&obs(guard.steps(), 0.8));
        assert_eq!(action, 0);
    }
    assert_eq!(
        guard.snapshot().tier_steps[0],
        primary_steps_when_tripped,
        "tier 0 served nothing while degraded"
    );

    // Agreeing regime: divergence decays as the window slides, and the
    // guard walks FallenBack -> Recovering -> Healthy back onto tier 0.
    for _ in 0..400 {
        guard.act_vec(&obs(guard.steps(), 0.2));
        if guard.state() == HealthState::Healthy {
            break;
        }
    }
    assert_eq!(guard.state(), HealthState::Healthy, "recovered");
    assert_eq!(guard.active_tier(), 0, "primary restored");
    let states: Vec<HealthState> = guard.transitions().iter().map(|t| t.to).collect();
    assert!(states.contains(&HealthState::Recovering), "{states:?}");
    // A few more healthy steps: the restored primary is really serving.
    for _ in 0..8 {
        guard.act_vec(&obs(guard.steps(), 0.2));
    }
    let snap = guard.snapshot();
    assert!(
        snap.tier_steps[0] > primary_steps_when_tripped,
        "primary serves again"
    );
}

#[test]
fn persistent_badness_escalates_to_the_last_resort_and_stays_in_range() {
    let tiers: Vec<Box<dyn VecPolicy>> = vec![
        Box::new(Threshold),
        Box::new(Constant(0, "shadow-net")),
        Box::new(Constant(2, "mid-tier")),
        Box::new(Constant(3, "last-resort")),
    ];
    let mut guard = GuardedPolicy::new(tiers, 1, unit_baseline(), cfg());

    let mut served_last_resort = false;
    for _ in 0..400 {
        let action = guard.act_vec(&obs(guard.steps(), 0.8));
        assert!(guard.active_tier() < 4);
        served_last_resort |= action == 3;
    }
    assert_eq!(
        guard.active_tier(),
        3,
        "sustained badness escalates to the bottom of the ladder: {:?}",
        guard.transitions()
    );
    assert!(served_last_resort, "the last resort actually served");

    // Demotions were recorded one tier at a time, monotonically.
    let demotions: Vec<(usize, usize)> = guard
        .transitions()
        .iter()
        .filter(|t| t.to_tier > t.from_tier)
        .map(|t| (t.from_tier, t.to_tier))
        .collect();
    assert!(demotions.len() >= 3, "{demotions:?}");
    for (from, to) in demotions {
        assert_eq!(to, from + 1, "ladder is walked one rung at a time");
    }
}

#[test]
fn stuck_input_trips_even_when_all_tiers_agree() {
    // Primary and shadow are identical: divergence is structurally zero,
    // and the frozen observation sits at the centre of the baseline, so
    // only the stuck detector can notice the fault.
    let tiers: Vec<Box<dyn VecPolicy>> = vec![
        Box::new(Constant(0, "primary")),
        Box::new(Constant(0, "shadow-net")),
    ];
    let mut guard = GuardedPolicy::new(tiers, 1, unit_baseline(), cfg());

    let frozen = vec![0.5f32, 0.5];
    for _ in 0..96 {
        guard.act_vec(&frozen);
    }
    assert_ne!(guard.state(), HealthState::Healthy, "stuck input noticed");
    assert!(
        guard
            .transitions()
            .iter()
            .any(|t| t.reason == "stuck-input"),
        "transition blamed on the stuck input: {:?}",
        guard.transitions()
    );
}

/// Flapping pin: a stream that alternates short fault episodes with clean
/// recovery windows must not oscillate Healthy ↔ FallenBack faster than
/// the hysteresis windows allow. Every threshold in the default config is
/// expressed in health evaluations (one per `flush_every` steps), so the
/// pacing bounds below are exact consequences of the configuration:
///
/// - Suspect → FallenBack needs `trip_after` consecutive bad evaluations
///   after entering Suspect;
/// - FallenBack → Recovering needs `recover_after` consecutive good ones;
/// - Recovering → Healthy needs `heal_after` more;
/// - two successive falls are therefore separated by at least
///   `trip_after + recover_after + heal_after + suspect_after` evaluations
///   (the machine must walk FallenBack → Recovering → Healthy → Suspect →
///   FallenBack in between).
#[test]
fn repeated_short_fault_episodes_cannot_flap_faster_than_hysteresis() {
    let cfg = cfg();
    let tiers: Vec<Box<dyn VecPolicy>> = vec![
        Box::new(Threshold),
        Box::new(Constant(0, "shadow-net")),
        Box::new(Constant(0, "last-resort")),
    ];
    let mut guard = GuardedPolicy::new(tiers, 1, unit_baseline(), cfg.clone());

    // Seeded flapping trace: 16 diverging steps, then 64 agreeing steps
    // (long enough for the divergence window to fully drain), repeated.
    let total_steps: u64 = 1600;
    for _ in 0..total_steps {
        let base = if guard.steps() % 80 < 16 { 0.8 } else { 0.2 };
        guard.act_vec(&obs(guard.steps(), base));
    }

    let transitions = guard.transitions().to_vec();
    assert!(
        transitions.iter().any(|t| t.to == HealthState::FallenBack),
        "the flapping trace genuinely trips the guard: {transitions:?}"
    );

    let flush = cfg.flush_every as u64;
    let evals = (total_steps / flush) as usize;

    // Per-transition pacing: each hysteresis-gated edge arrives no earlier
    // than its configured number of evaluations after the previous edge.
    let mut last_step = 0u64;
    let mut last_to = HealthState::Healthy;
    for t in &transitions {
        let gap_evals = ((t.step - last_step) / flush) as usize;
        let needed = match (t.from, t.to) {
            (HealthState::Healthy, HealthState::Suspect) => cfg.suspect_after,
            (HealthState::Suspect, HealthState::FallenBack) => cfg.trip_after,
            (HealthState::Suspect, HealthState::Healthy) => cfg.clear_after,
            (HealthState::FallenBack, HealthState::Recovering) => cfg.recover_after,
            (HealthState::FallenBack, HealthState::FallenBack) => cfg.escalate_after,
            (HealthState::Recovering, HealthState::Healthy) => cfg.heal_after,
            // Recovering falls straight back on one bad evaluation.
            (HealthState::Recovering, HealthState::FallenBack) => 1,
            other => panic!("unexpected transition {other:?}"),
        };
        assert!(
            gap_evals >= needed,
            "transition {:?}->{:?} at step {} arrived after {gap_evals} evaluations, \
             hysteresis requires {needed} (previous transition to {last_to:?} at {last_step})",
            t.from,
            t.to,
            t.step
        );
        last_step = t.step;
        last_to = t.to;
    }

    // Cycle bound: successive Suspect → FallenBack falls are at least
    // trip+recover+heal+suspect evaluations apart.
    let falls = transitions
        .iter()
        .filter(|t| t.from == HealthState::Suspect && t.to == HealthState::FallenBack)
        .count();
    let min_cycle = cfg.trip_after + cfg.recover_after + cfg.heal_after + cfg.suspect_after;
    assert!(
        falls <= 1 + evals / min_cycle,
        "{falls} falls over {evals} evaluations beats the {min_cycle}-evaluation cycle floor"
    );

    // And the same trace replayed is bit-identical (the seeded pin).
    let tiers2: Vec<Box<dyn VecPolicy>> = vec![
        Box::new(Threshold),
        Box::new(Constant(0, "shadow-net")),
        Box::new(Constant(0, "last-resort")),
    ];
    let mut guard2 = GuardedPolicy::new(tiers2, 1, unit_baseline(), cfg);
    for _ in 0..total_steps {
        let base = if guard2.steps() % 80 < 16 { 0.8 } else { 0.2 };
        guard2.act_vec(&obs(guard2.steps(), base));
    }
    assert_eq!(transitions.len(), guard2.transitions().len());
    for (a, b) in transitions.iter().zip(guard2.transitions()) {
        assert_eq!((a.step, a.from, a.to), (b.step, b.from, b.to));
    }
}

/// The serving daemon's batched-inference hook: `record_served` must do
/// exactly the bookkeeping of `act_vec` minus invoking the active tier.
#[test]
fn record_served_matches_act_vec_bookkeeping() {
    let mk = || -> GuardedPolicy {
        let tiers: Vec<Box<dyn VecPolicy>> =
            vec![Box::new(Threshold), Box::new(Constant(0, "shadow-net"))];
        GuardedPolicy::new(tiers, 1, unit_baseline(), cfg())
    };
    let mut via_act = mk();
    let mut via_hook = mk();
    // The hook caller computes the active tier's action externally — here
    // by evaluating the same (stateless) tier functions out-of-band.
    let tier_action = |tier: usize, o: &[f32]| {
        if tier == 0 {
            usize::from(o[0] > 0.5)
        } else {
            0
        }
    };
    for i in 0..256u64 {
        let base = if i % 40 < 12 { 0.8 } else { 0.2 };
        let o = obs(i, base);
        let action = via_act.act_vec(&o);
        let external = tier_action(via_hook.active_tier(), &o);
        assert_eq!(action, external, "lockstep guards serve the same tier");
        via_hook.record_served(&o, external);
        assert_eq!(via_act.state(), via_hook.state());
        assert_eq!(via_act.active_tier(), via_hook.active_tier());
        assert_eq!(via_act.steps(), via_hook.steps());
    }
    let a = via_act.snapshot();
    let b = via_hook.snapshot();
    assert_eq!(a.tier_steps, b.tier_steps);
    assert_eq!(a.compared, b.compared);
    assert_eq!(a.diverged, b.diverged);
    assert_eq!(a.transitions.len(), b.transitions.len());
}

#[test]
fn healthy_agreeing_stream_never_transitions() {
    let tiers: Vec<Box<dyn VecPolicy>> =
        vec![Box::new(Threshold), Box::new(Constant(0, "shadow-net"))];
    let mut guard = GuardedPolicy::new(tiers, 1, unit_baseline(), cfg());
    for _ in 0..256 {
        guard.act_vec(&obs(guard.steps(), 0.2));
    }
    assert_eq!(guard.state(), HealthState::Healthy);
    assert_eq!(guard.active_tier(), 0);
    assert!(guard.transitions().is_empty(), "{:?}", guard.transitions());
    let snap = guard.snapshot();
    assert_eq!(snap.tier_steps[0], 256, "primary served every step");
    assert!(snap.compared > 0 && snap.diverged == 0);
}
