//! The guarded execution harness: a [`VecPolicy`] wrapper that serves
//! decisions from a ladder of policy tiers and demotes/restores the serving
//! tier through a hysteresis state machine driven by shadow divergence and
//! observation drift.
//!
//! # Tier ladder
//!
//! Tier 0 is the **primary** (the deployed extracted FSM); later tiers are
//! progressively more conservative fallbacks (quantized net → exact net →
//! constant baseline in the standard deployment, see
//! `lahd_core::guard_eval`). One tier — the `shadow_tier` — is designated
//! the *reference*: the teacher the primary is supposed to be faithful to.
//!
//! # Execution model
//!
//! Every decision is served synchronously by the active tier alone; the
//! observation is buffered, and every `flush_every` steps the buffered
//! stream is replayed through the *other* tiers in one deferred batch (the
//! shadow-mode of the paper's deployment story: the FSM answers on the hot
//! path, the nets replay asynchronously). Because every tier consumes the
//! full observation stream, recurrent fallbacks keep warm hidden state and
//! a tier switch at a flush boundary is seamless. Primary-vs-reference
//! actions are compared on a seeded sample of steps and health is
//! re-evaluated at each flush.
//!
//! # Health state machine
//!
//! ```text
//!            bad×suspect_after        bad×trip_after
//!  Healthy ───────────────────▶ Suspect ─────────────▶ FallenBack ─┐
//!     ▲                            │ good×clear_after      │  ▲    │ bad×escalate_after
//!     │                            ▼                       │  └────┘ (demote one tier)
//!     │                         Healthy    good×recover_after
//!     │                                                    ▼
//!     └───────────── good×heal_after ─────────────── Recovering
//!                   (restore primary)                      │ bad
//!                                                          ▼
//!                                                     FallenBack
//! ```
//!
//! "bad" / "good" are hysteresis bands around the divergence and drift trip
//! thresholds (`clear_margin` < 1 separates them), so the machine cannot
//! flap on a score hovering at the threshold. Every transition is recorded
//! with the scores that caused it.
//!
//! All of it is deterministic under a fixed seed: sampling is a pure
//! function of `(seed, step)`, thresholds are fixed, and replay order is
//! the tier order.

use lahd_fsm::VecPolicy;

use crate::drift::{DriftDetector, DriftScore};
use crate::shadow::{ShadowSample, ShadowTracker};
use crate::stats::BaselineProfile;

/// Health of the guarded policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Serving the primary tier; all signals nominal.
    Healthy,
    /// Serving the primary tier; signals elevated, watching closely.
    Suspect,
    /// Serving a fallback tier.
    FallenBack,
    /// Signals recovered; still serving the fallback while confirming.
    Recovering,
}

impl HealthState {
    /// Stable lower-case name (reports, logs, JSON).
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::FallenBack => "fallen-back",
            HealthState::Recovering => "recovering",
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Thresholds and cadences of the guard state machine. All counts are in
/// health evaluations (one per `flush_every` decisions).
#[derive(Clone, Debug)]
pub struct GuardConfig {
    /// Sliding window, in decision steps, for drift statistics and the
    /// divergence rate.
    pub window: usize,
    /// Deferred-replay / health-evaluation cadence in decision steps.
    pub flush_every: usize,
    /// Shadow comparisons sample ~1 in this many steps.
    pub sample_period: usize,
    /// Divergence rate at/above which an evaluation counts as bad.
    pub divergence_trip: f64,
    /// Drift score (see [`DriftScore::score`]) at/above which an evaluation
    /// counts as bad.
    pub drift_trip: f64,
    /// Hysteresis: an evaluation counts as good only when every signal is
    /// below `trip × clear_margin`.
    pub clear_margin: f64,
    /// Minimum sampled comparisons in the window before the divergence rate
    /// is acted on.
    pub min_div_samples: usize,
    /// Minimum observations in the drift window before the drift score is
    /// acted on — a handful of samples cannot be compared against a
    /// training-scale baseline without false alarms.
    pub min_drift_samples: usize,
    /// Consecutive bad evaluations before Healthy → Suspect.
    pub suspect_after: usize,
    /// Consecutive bad evaluations before Suspect → FallenBack.
    pub trip_after: usize,
    /// Consecutive good evaluations before Suspect → Healthy.
    pub clear_after: usize,
    /// Consecutive good evaluations before FallenBack → Recovering.
    pub recover_after: usize,
    /// Consecutive good evaluations before Recovering → Healthy.
    pub heal_after: usize,
    /// Consecutive bad evaluations while FallenBack before demoting one
    /// more tier down the ladder.
    pub escalate_after: usize,
    /// A run of this many identical consecutive observations counts as a
    /// stuck input (bad), whatever the distributional scores say.
    pub stuck_after: usize,
    /// Capacity of the shadow-sample ring log.
    pub log_capacity: usize,
    /// Seed for the sampled-comparison selection.
    pub seed: u64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            window: 64,
            flush_every: 8,
            sample_period: 2,
            divergence_trip: 0.5,
            // Clean observation streams score up to ~5.5 against a
            // training-time baseline (partial windows dominated by episode
            // warmup, and trajectories steered by a *fallback* tier rather
            // than the trained policy), while injected sensor faults score
            // in the hundreds. The trip and the clear threshold
            // (trip × clear_margin = 6.0) both sit above that clean band so
            // a healthy stream neither trips nor blocks recovery.
            drift_trip: 12.0,
            clear_margin: 0.5,
            min_div_samples: 4,
            min_drift_samples: 32,
            suspect_after: 1,
            trip_after: 2,
            clear_after: 2,
            recover_after: 2,
            heal_after: 2,
            escalate_after: 6,
            stuck_after: 48,
            log_capacity: 256,
            seed: 0,
        }
    }
}

/// One recorded health/tier transition.
#[derive(Clone, Debug)]
pub struct TransitionRecord {
    /// Global decision step of the evaluation that triggered it.
    pub step: u64,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// Serving tier before.
    pub from_tier: usize,
    /// Serving tier after.
    pub to_tier: usize,
    /// Divergence rate at the evaluation (0 when below `min_div_samples`).
    pub divergence: f64,
    /// Drift score at the evaluation.
    pub drift: f64,
    /// Stuck-input run length at the evaluation.
    pub stuck_run: usize,
    /// Dominant signal ("divergence", "drift", "stuck-input", "cleared").
    pub reason: &'static str,
}

/// Read-only snapshot of a guard's accumulated evidence, for reporting.
#[derive(Clone, Debug)]
pub struct GuardSnapshot {
    /// Current health.
    pub state: HealthState,
    /// Currently serving tier.
    pub active_tier: usize,
    /// Tier names, ladder order.
    pub tier_names: Vec<String>,
    /// Decisions served by each tier.
    pub tier_steps: Vec<u64>,
    /// Total decisions served.
    pub steps: u64,
    /// All recorded transitions, in order.
    pub transitions: Vec<TransitionRecord>,
    /// Lifetime sampled comparisons.
    pub compared: u64,
    /// Lifetime diverged comparisons.
    pub diverged: u64,
    /// Highest drift score observed at any evaluation.
    pub drift_peak: f64,
    /// Scores at the most recent evaluation.
    pub last_divergence: f64,
    /// Drift score at the most recent evaluation.
    pub last_drift: f64,
    /// Ring-logged shadow samples, oldest first.
    pub samples: Vec<ShadowSample>,
}

struct PendingStep {
    step: u64,
    obs: Vec<f32>,
    served: usize,
}

/// A [`VecPolicy`] that wraps a tier ladder in the guarded execution
/// harness. See the module docs for the execution model.
pub struct GuardedPolicy {
    tiers: Vec<Box<dyn VecPolicy>>,
    tier_names: Vec<String>,
    shadow_tier: usize,
    cfg: GuardConfig,
    drift: DriftDetector,
    shadow: ShadowTracker,
    pending: Vec<PendingStep>,
    state: HealthState,
    active: usize,
    step: u64,
    tier_steps: Vec<u64>,
    transitions: Vec<TransitionRecord>,
    bad_evals: usize,
    good_evals: usize,
    drift_peak: f64,
    last_divergence: f64,
    last_drift: f64,
    name: String,
}

impl GuardedPolicy {
    /// Wraps `tiers` (ladder order: primary first, most conservative last)
    /// with the guard. `shadow_tier` selects the reference tier the primary
    /// is compared against and must not be tier 0.
    ///
    /// # Panics
    /// Panics if the ladder has fewer than two tiers, `shadow_tier` is out
    /// of range or zero, or the baseline dimensionality is zero.
    pub fn new(
        tiers: Vec<Box<dyn VecPolicy>>,
        shadow_tier: usize,
        baseline: BaselineProfile,
        cfg: GuardConfig,
    ) -> Self {
        assert!(tiers.len() >= 2, "a guard needs at least one fallback tier");
        assert!(
            shadow_tier > 0 && shadow_tier < tiers.len(),
            "shadow tier must be a fallback tier index"
        );
        assert!(baseline.dim() > 0, "baseline profile is empty");
        let tier_names = tiers.iter().map(|t| t.name().to_string()).collect();
        let drift = DriftDetector::new(baseline, cfg.window);
        let shadow = ShadowTracker::new(cfg.sample_period, cfg.window, cfg.log_capacity, cfg.seed);
        let n = tiers.len();
        Self {
            tiers,
            tier_names,
            shadow_tier,
            cfg,
            drift,
            shadow,
            pending: Vec::new(),
            state: HealthState::Healthy,
            active: 0,
            step: 0,
            tier_steps: vec![0; n],
            transitions: Vec::new(),
            bad_evals: 0,
            good_evals: 0,
            drift_peak: 0.0,
            last_divergence: 0.0,
            last_drift: 0.0,
            name: "guarded".to_string(),
        }
    }

    /// Current health.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Index of the currently serving tier.
    pub fn active_tier(&self) -> usize {
        self.active
    }

    /// Name of the currently serving tier.
    pub fn active_tier_name(&self) -> &str {
        &self.tier_names[self.active]
    }

    /// Decisions served so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// All recorded transitions so far.
    pub fn transitions(&self) -> &[TransitionRecord] {
        &self.transitions
    }

    /// Snapshot of everything the guard has accumulated (flushes pending
    /// shadow replay first so the evidence is complete).
    pub fn snapshot(&mut self) -> GuardSnapshot {
        self.flush();
        let (compared, diverged) = self.shadow.totals();
        GuardSnapshot {
            state: self.state,
            active_tier: self.active,
            tier_names: self.tier_names.clone(),
            tier_steps: self.tier_steps.clone(),
            steps: self.step,
            transitions: self.transitions.clone(),
            compared,
            diverged,
            drift_peak: self.drift_peak,
            last_divergence: self.last_divergence,
            last_drift: self.last_drift,
            samples: self.shadow.samples().copied().collect(),
        }
    }

    /// Replays the buffered observation stream through every non-serving
    /// tier and records sampled primary-vs-reference comparisons.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut primary: Vec<usize> = Vec::new();
        let mut reference: Vec<usize> = Vec::new();
        for (t, tier) in self.tiers.iter_mut().enumerate() {
            if t == self.active {
                continue;
            }
            if t != 0 && t != self.shadow_tier {
                // Keep non-compared fallbacks warm without collecting.
                for p in &self.pending {
                    tier.act_vec(&p.obs);
                }
                continue;
            }
            let actions: Vec<usize> = self.pending.iter().map(|p| tier.act_vec(&p.obs)).collect();
            if t == 0 {
                primary = actions;
            } else {
                reference = actions;
            }
        }
        // The serving tier already produced its actions on the hot path.
        if self.active == 0 {
            primary = self.pending.iter().map(|p| p.served).collect();
        }
        if self.active == self.shadow_tier {
            reference = self.pending.iter().map(|p| p.served).collect();
        }
        for (i, p) in self.pending.iter().enumerate() {
            if self.shadow.is_sampled(p.step) {
                self.shadow.record(ShadowSample {
                    step: p.step,
                    primary_action: primary[i],
                    shadow_action: reference[i],
                    diverged: primary[i] != reference[i],
                });
            }
        }
        self.pending.clear();
    }

    /// One health evaluation at a flush boundary.
    fn evaluate(&mut self) {
        let mut drift = self.drift.score();
        if drift.samples < self.cfg.min_drift_samples {
            // Too few observations to compare against a training-scale
            // baseline — treat the distributional score as no evidence.
            // The stuck-input run is exact and stays live.
            drift.score = 0.0;
        }
        let divergence = self
            .shadow
            .rate(self.step, self.cfg.min_div_samples)
            .unwrap_or(0.0);
        self.last_divergence = divergence;
        self.last_drift = drift.score;
        self.drift_peak = self.drift_peak.max(drift.score);

        let stuck = drift.stuck_run >= self.cfg.stuck_after;
        let bad =
            stuck || divergence >= self.cfg.divergence_trip || drift.score >= self.cfg.drift_trip;
        let good = !stuck
            && divergence <= self.cfg.divergence_trip * self.cfg.clear_margin
            && drift.score <= self.cfg.drift_trip * self.cfg.clear_margin;
        if bad {
            self.bad_evals += 1;
            self.good_evals = 0;
        } else if good {
            self.good_evals += 1;
            self.bad_evals = 0;
        } else {
            // Ambiguous band between clear and trip: hold, requiring the
            // consecutive runs to restart.
            self.bad_evals = 0;
            self.good_evals = 0;
        }

        let bad_reason = if stuck {
            "stuck-input"
        } else if drift.score >= self.cfg.drift_trip {
            "drift"
        } else {
            "divergence"
        };

        match self.state {
            HealthState::Healthy => {
                if bad && self.bad_evals >= self.cfg.suspect_after {
                    self.transition(
                        HealthState::Suspect,
                        self.active,
                        &drift,
                        divergence,
                        bad_reason,
                    );
                }
            }
            HealthState::Suspect => {
                if bad && self.bad_evals >= self.cfg.trip_after {
                    let to_tier = (self.active + 1).min(self.tiers.len() - 1);
                    self.transition(
                        HealthState::FallenBack,
                        to_tier,
                        &drift,
                        divergence,
                        bad_reason,
                    );
                } else if good && self.good_evals >= self.cfg.clear_after {
                    self.transition(
                        HealthState::Healthy,
                        self.active,
                        &drift,
                        divergence,
                        "cleared",
                    );
                }
            }
            HealthState::FallenBack => {
                if good && self.good_evals >= self.cfg.recover_after {
                    self.transition(
                        HealthState::Recovering,
                        self.active,
                        &drift,
                        divergence,
                        "cleared",
                    );
                } else if bad
                    && self.bad_evals >= self.cfg.escalate_after
                    && self.active + 1 < self.tiers.len()
                {
                    let to_tier = self.active + 1;
                    self.transition(
                        HealthState::FallenBack,
                        to_tier,
                        &drift,
                        divergence,
                        bad_reason,
                    );
                }
            }
            HealthState::Recovering => {
                if bad {
                    self.transition(
                        HealthState::FallenBack,
                        self.active,
                        &drift,
                        divergence,
                        bad_reason,
                    );
                } else if good && self.good_evals >= self.cfg.heal_after {
                    self.transition(HealthState::Healthy, 0, &drift, divergence, "cleared");
                }
            }
        }
    }

    /// Serving-daemon integration hook: records one decision whose action
    /// the caller computed *externally* for the active tier — e.g. a shard
    /// worker that batched many streams' active-tier inferences through one
    /// `infer_batch` call. Bookkeeping is identical to
    /// [`VecPolicy::act_vec`] (drift observation, pending buffer, flush
    /// cadence, tier accounting) except that the active tier is not
    /// invoked; the caller is responsible for having advanced the active
    /// tier's recurrent state with this observation.
    pub fn record_served(&mut self, obs: &[f32], action: usize) {
        self.drift.observe(obs);
        self.tier_steps[self.active] += 1;
        self.pending.push(PendingStep {
            step: self.step,
            obs: obs.to_vec(),
            served: action,
        });
        self.step += 1;
        if self.step % self.cfg.flush_every as u64 == 0 {
            self.flush();
            self.evaluate();
        }
    }

    fn transition(
        &mut self,
        to: HealthState,
        to_tier: usize,
        drift: &DriftScore,
        divergence: f64,
        reason: &'static str,
    ) {
        self.transitions.push(TransitionRecord {
            step: self.step,
            from: self.state,
            to,
            from_tier: self.active,
            to_tier,
            divergence,
            drift: drift.score,
            stuck_run: drift.stuck_run,
            reason,
        });
        self.state = to;
        self.active = to_tier;
        self.bad_evals = 0;
        self.good_evals = 0;
    }
}

impl VecPolicy for GuardedPolicy {
    /// Episode reset: finishes the deferred replay so no evidence is lost,
    /// then resets every tier's episode state. Health, the serving tier and
    /// the accumulated statistics deliberately survive — a deployed guard
    /// outlives episodes.
    fn reset(&mut self) {
        self.flush();
        for tier in &mut self.tiers {
            tier.reset();
        }
    }

    fn act_vec(&mut self, obs: &[f32]) -> usize {
        let action = self.tiers[self.active].act_vec(obs);
        self.record_served(obs, action);
        action
    }

    fn name(&self) -> &str {
        &self.name
    }
}
