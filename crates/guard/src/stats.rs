//! Streaming observation statistics: Welford mean/variance and the P²
//! quantile sketch, composed into per-dimension baseline profiles.
//!
//! The guardrail layer needs two statistical artifacts:
//!
//! * a **training-time baseline** ([`BaselineProfile`]) summarising the
//!   observation distribution the policy was extracted under — built in one
//!   streaming pass over the transition dataset ([`StreamingProfile`]) and
//!   stamped into the artifact directory in the workspace's line-oriented
//!   text format ([`write_profile`]/[`read_profile`]);
//! * a cheap **runtime window** to compare against it (see
//!   [`crate::drift::DriftDetector`]).
//!
//! Everything here is deterministic: the same observation stream produces
//! bit-identical profiles, so guarded runs stay reproducible under fixed
//! seeds.

use std::io::{self, BufRead, Write};

/// Welford's online mean/variance accumulator (numerically stable single
/// pass; the textbook recurrence, in f64).
#[derive(Clone, Debug, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Samples seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// The P² streaming quantile estimator (Jain & Chlamtac, 1985): tracks one
/// quantile with five markers and piecewise-parabolic adjustment, O(1) per
/// sample and deterministic. Exact until five samples have arrived.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based, as in the paper).
    n: [f64; 5],
    /// Desired marker positions.
    nd: [f64; 5],
    /// Desired-position increments per sample.
    dnd: [f64; 5],
    /// Samples seen before the markers initialise.
    warmup: Vec<f64>,
    count: u64,
}

impl P2Quantile {
    /// Estimator for the `p`-quantile, `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must lie strictly in (0, 1)");
        Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            nd: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dnd: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            warmup: Vec::with_capacity(5),
            count: 0,
        }
    }

    /// Consumes one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.warmup.push(x);
            if self.count == 5 {
                self.warmup
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
                for (slot, &v) in self.q.iter_mut().zip(&self.warmup) {
                    *slot = v;
                }
            }
            return;
        }

        // Locate the cell containing x, extending the extremes if needed.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[k] <= x < q[k+1]
            (0..4)
                .find(|&i| x < self.q[i + 1])
                .expect("x is below q[4] here")
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.nd[i] += self.dnd[i];
        }

        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.nd[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (qm, qi, qp) = (self.q[i - 1], self.q[i], self.q[i + 1]);
        let (nm, ni, np) = (self.n[i - 1], self.n[i], self.n[i + 1]);
        qi + d / (np - nm)
            * ((ni - nm + d) * (qp - qi) / (np - ni) + (np - ni - d) * (qi - qm) / (ni - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate (exact sorted interpolation before five samples; 0
    /// when empty).
    pub fn quantile(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count < 5 {
            let mut sorted = self.warmup.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            return exact_quantile(&sorted, self.p);
        }
        self.q[2]
    }
}

/// Exact `p`-quantile of an already **sorted** slice, with linear
/// interpolation between order statistics (the batch reference the streaming
/// estimators are property-tested against).
pub fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let rank = p * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Streaming statistics of one observation dimension.
#[derive(Clone, Debug)]
pub struct DimStream {
    welford: Welford,
    min: f64,
    max: f64,
    q25: P2Quantile,
    q50: P2Quantile,
    q75: P2Quantile,
}

impl DimStream {
    fn new() -> Self {
        Self {
            welford: Welford::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            q25: P2Quantile::new(0.25),
            q50: P2Quantile::new(0.50),
            q75: P2Quantile::new(0.75),
        }
    }

    fn push(&mut self, x: f64) {
        self.welford.push(x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.q25.push(x);
        self.q50.push(x);
        self.q75.push(x);
    }

    fn profile(&self) -> DimProfile {
        DimProfile {
            mean: self.welford.mean(),
            std: self.welford.std(),
            min: if self.min.is_finite() { self.min } else { 0.0 },
            max: if self.max.is_finite() { self.max } else { 0.0 },
            p25: self.q25.quantile(),
            p50: self.q50.quantile(),
            p75: self.q75.quantile(),
        }
    }
}

/// One streaming pass over observation vectors, producing a
/// [`BaselineProfile`].
#[derive(Clone, Debug)]
pub struct StreamingProfile {
    dims: Vec<DimStream>,
    count: u64,
}

impl StreamingProfile {
    /// Profile builder over `dim`-dimensional observations.
    pub fn new(dim: usize) -> Self {
        Self {
            dims: (0..dim).map(|_| DimStream::new()).collect(),
            count: 0,
        }
    }

    /// Consumes one observation vector.
    ///
    /// # Panics
    /// Panics if `obs` does not match the configured dimensionality.
    pub fn push(&mut self, obs: &[f32]) {
        assert_eq!(obs.len(), self.dims.len(), "observation dimension changed");
        for (stream, &x) in self.dims.iter_mut().zip(obs) {
            stream.push(x as f64);
        }
        self.count += 1;
    }

    /// Observations consumed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Snapshot of the accumulated statistics.
    pub fn profile(&self) -> BaselineProfile {
        BaselineProfile {
            dims: self.dims.iter().map(DimStream::profile).collect(),
            count: self.count,
        }
    }
}

/// Summary statistics of one observation dimension under the training
/// distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DimProfile {
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// First quartile (P² estimate).
    pub p25: f64,
    /// Median (P² estimate).
    pub p50: f64,
    /// Third quartile (P² estimate).
    pub p75: f64,
}

impl DimProfile {
    /// The drift-normalisation denominator for this dimension: the standard
    /// deviation, floored by a fraction of the observed range (so
    /// near-constant dimensions do not produce infinite z-scores) and by an
    /// absolute epsilon.
    pub fn denom(&self) -> f64 {
        self.std.max(0.05 * (self.max - self.min)).max(1e-3)
    }
}

/// Per-dimension summary of the observation distribution a policy was
/// trained/extracted under — the reference the runtime drift detector
/// compares live windows against.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineProfile {
    /// One profile per observation dimension.
    pub dims: Vec<DimProfile>,
    /// Number of observations the profile was computed over.
    pub count: u64,
}

impl BaselineProfile {
    /// Observation dimensionality.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }
}

const MAGIC: &str = "lahd-baseline v1";

/// The profile format is line-oriented with one record per dimension; no
/// scenario comes close to this many observation dimensions, so a larger
/// declared count can only be corruption — reject it before trusting it
/// with an allocation.
const MAX_PROFILE_DIMS: usize = 65_536;

/// Errors produced while reading a baseline-profile file. Structural
/// problems carry the 1-based line number they were detected on, to parity
/// with the artifact loader's convergence-log errors.
#[derive(Debug)]
pub enum ProfileError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Structural problem with the file contents at a specific line.
    Format {
        /// 1-based line number the problem was detected on.
        line: usize,
        /// What exactly is wrong.
        detail: String,
    },
}

impl ProfileError {
    fn format(line: usize, detail: impl Into<String>) -> Self {
        ProfileError::Format {
            line,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::Io(e) => write!(f, "io error: {e}"),
            ProfileError::Format { line, detail } => {
                write!(f, "format error at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<io::Error> for ProfileError {
    fn from(e: io::Error) -> Self {
        ProfileError::Io(e)
    }
}

/// Writes a profile in the workspace's human-reviewable text style (floats
/// as shortest-roundtrip scientific notation, so read-back is exact).
pub fn write_profile(profile: &BaselineProfile, out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "{MAGIC}")?;
    writeln!(out, "dims {} count {}", profile.dims.len(), profile.count)?;
    for (i, d) in profile.dims.iter().enumerate() {
        writeln!(
            out,
            "dim {i} mean {:e} std {:e} min {:e} max {:e} p25 {:e} p50 {:e} p75 {:e}",
            d.mean, d.std, d.min, d.max, d.p25, d.p50, d.p75
        )?;
    }
    writeln!(out, "end")?;
    Ok(())
}

/// Reads a profile written by [`write_profile`]. Never panics on malformed
/// input: truncation, bit flips, non-finite statistics and absurd declared
/// dimension counts all surface as a typed, line-numbered
/// [`ProfileError`].
pub fn read_profile(input: &mut impl BufRead) -> Result<BaselineProfile, ProfileError> {
    let mut lines = input.lines();
    let magic = lines
        .next()
        .ok_or_else(|| ProfileError::format(1, "empty file"))??;
    if magic.trim() != MAGIC {
        return Err(ProfileError::format(
            1,
            format!("bad magic line: {magic:?}"),
        ));
    }

    let header = lines
        .next()
        .ok_or_else(|| ProfileError::format(2, "missing dims header"))??;
    let mut parts = header.split_whitespace();
    let ndims: usize = match (parts.next(), parts.next()) {
        (Some("dims"), Some(v)) => v
            .parse()
            .map_err(|_| ProfileError::format(2, format!("bad dim count {v:?}")))?,
        _ => return Err(ProfileError::format(2, format!("bad header {header:?}"))),
    };
    if ndims == 0 || ndims > MAX_PROFILE_DIMS {
        return Err(ProfileError::format(
            2,
            format!("dim count {ndims} outside 1..={MAX_PROFILE_DIMS} (corrupt header?)"),
        ));
    }
    let count: u64 = match (parts.next(), parts.next()) {
        (Some("count"), Some(v)) => v
            .parse()
            .map_err(|_| ProfileError::format(2, format!("bad sample count {v:?}")))?,
        _ => return Err(ProfileError::format(2, format!("bad header {header:?}"))),
    };

    let mut dims = Vec::with_capacity(ndims);
    for i in 0..ndims {
        let line_no = 3 + i;
        let line = lines.next().ok_or_else(|| {
            ProfileError::format(line_no, format!("missing dim {i} (file truncated?)"))
        })??;
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 16 || toks[0] != "dim" {
            return Err(ProfileError::format(
                line_no,
                format!("bad dim line {line:?}"),
            ));
        }
        let field = |label: usize, value: usize| -> Result<f64, ProfileError> {
            let expected = ["mean", "std", "min", "max", "p25", "p50", "p75"][(label - 2) / 2];
            if toks[label] != expected {
                return Err(ProfileError::format(
                    line_no,
                    format!(
                        "dim {i}: expected field {expected:?}, found {:?}",
                        toks[label]
                    ),
                ));
            }
            let v: f64 = toks[value].parse().map_err(|_| {
                ProfileError::format(
                    line_no,
                    format!("dim {i}: bad {expected} value {:?}", toks[value]),
                )
            })?;
            // A drift denominator built on NaN/inf would poison every
            // z-score downstream; profiles are finite by construction.
            if !v.is_finite() {
                return Err(ProfileError::format(
                    line_no,
                    format!("dim {i}: non-finite {expected} value {:?}", toks[value]),
                ));
            }
            Ok(v)
        };
        dims.push(DimProfile {
            mean: field(2, 3)?,
            std: field(4, 5)?,
            min: field(6, 7)?,
            max: field(8, 9)?,
            p25: field(10, 11)?,
            p50: field(12, 13)?,
            p75: field(14, 15)?,
        });
    }
    let trailer_no = 3 + ndims;
    match lines.next() {
        Some(Ok(l)) if l.trim() == "end" => Ok(BaselineProfile { dims, count }),
        _ => Err(ProfileError::format(
            trailer_no,
            "missing 'end' terminator (file truncated?)",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass_reference() {
        let xs: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() * 3.0 + 1.5)
            .collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn p2_median_of_uniform_ramp_is_central() {
        let mut q = P2Quantile::new(0.5);
        // A deterministic low-discrepancy walk over [0, 1).
        for i in 0..2000u64 {
            q.push((i as f64 * 0.618_033_988_749_895).fract());
        }
        assert!((q.quantile() - 0.5).abs() < 0.05, "median {}", q.quantile());
    }

    #[test]
    fn p2_is_exact_below_five_samples() {
        let mut q = P2Quantile::new(0.5);
        q.push(3.0);
        q.push(1.0);
        q.push(2.0);
        assert_eq!(q.quantile(), 2.0);
    }

    #[test]
    fn profile_roundtrips_through_text_exactly() {
        let mut sp = StreamingProfile::new(3);
        for i in 0..50 {
            let x = i as f32 * 0.173;
            sp.push(&[x.sin(), x.cos() * 2.0, -x]);
        }
        let profile = sp.profile();
        let mut buf = Vec::new();
        write_profile(&profile, &mut buf).unwrap();
        let back = read_profile(&mut &buf[..]).unwrap();
        assert_eq!(profile, back);
    }

    #[test]
    fn truncated_profile_is_a_clear_error() {
        let mut sp = StreamingProfile::new(2);
        sp.push(&[1.0, 2.0]);
        let profile = sp.profile();
        let mut buf = Vec::new();
        write_profile(&profile, &mut buf).unwrap();
        // Cut at a line boundary (missing trailer) and mid-line (mangled
        // record): both must surface as clear format errors, not panics.
        let text = String::from_utf8(buf.clone()).unwrap();
        let at_line = text.rfind("end").unwrap();
        let e = read_profile(&mut &buf[..at_line]).unwrap_err();
        assert!(e.to_string().contains("truncated"), "{e}");
        let cut = buf.len() / 2;
        let e = read_profile(&mut &buf[..cut]).unwrap_err();
        assert!(matches!(e, ProfileError::Format { .. }), "{e}");
    }

    #[test]
    fn format_errors_carry_the_offending_line_number() {
        let mut sp = StreamingProfile::new(3);
        for i in 0..20 {
            sp.push(&[i as f32, -(i as f32), 0.5]);
        }
        let mut buf = Vec::new();
        write_profile(&sp.profile(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();

        // Mangle the second dim record (line 4: magic, header, dim 0, dim 1).
        let mangled: String = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 3 {
                    "dim 1 gibberish".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let e = read_profile(&mut mangled.as_bytes()).unwrap_err();
        match e {
            ProfileError::Format { line, .. } => assert_eq!(line, 4, "{mangled}"),
            other => panic!("expected a format error, got {other}"),
        }
        assert!(e.to_string().contains("line 4"), "{e}");
    }

    #[test]
    fn absurd_dim_count_is_rejected_before_allocation() {
        // A bit-flipped header declaring ~10^18 dimensions must be refused
        // up front, not trusted with a Vec::with_capacity.
        let text = format!("{MAGIC}\ndims 999999999999999999 count 10\nend\n");
        let e = read_profile(&mut text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("dim count"), "{e}");
        let text = format!("{MAGIC}\ndims 0 count 10\nend\n");
        let e = read_profile(&mut text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("dim count"), "{e}");
    }

    #[test]
    fn non_finite_statistics_are_rejected() {
        let text = format!(
            "{MAGIC}\ndims 1 count 5\n\
             dim 0 mean NaN std 1e0 min 0e0 max 1e0 p25 0e0 p50 5e-1 p75 1e0\nend\n"
        );
        let e = read_profile(&mut text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("non-finite"), "{e}");
    }

    /// Satellite hardening pin: flipping any single bit anywhere in a
    /// profile file must yield Ok (benign flip) or a typed error — never a
    /// panic, never an abort-by-allocation.
    #[test]
    fn bit_flip_fuzz_never_panics() {
        let mut sp = StreamingProfile::new(4);
        for i in 0..64 {
            let x = (i as f32 * 0.37).sin();
            sp.push(&[x, x * 2.0, -x, 1.0 - x]);
        }
        let mut buf = Vec::new();
        write_profile(&sp.profile(), &mut buf).unwrap();
        for pos in 0..buf.len() {
            for bit in [0x01u8, 0x10, 0x80] {
                let mut flipped = buf.clone();
                flipped[pos] ^= bit;
                match read_profile(&mut &flipped[..]) {
                    Ok(p) => assert!(p.dim() > 0),
                    Err(e) => assert!(!e.to_string().is_empty()),
                }
            }
        }
    }

    #[test]
    fn denom_floors_constant_dimensions() {
        let d = DimProfile {
            mean: 1.0,
            std: 0.0,
            min: 1.0,
            max: 1.0,
            p25: 1.0,
            p50: 1.0,
            p75: 1.0,
        };
        assert_eq!(d.denom(), 1e-3);
    }
}
