//! Incident reports: the human- and machine-readable record a guarded run
//! leaves behind.
//!
//! A report packages a [`GuardSnapshot`] with run metadata (scenario, fault
//! description, seed), per-episode outcomes, and counterfactual scores of
//! each tier run standalone over the same episodes. It renders to Markdown
//! (for eyes) and to JSON (for tooling). Both renderings are hand-rolled
//! and fully deterministic: map keys in fixed order, floats printed with
//! the shortest-roundtrip `{:e}` format — two same-seed runs produce
//! byte-identical output.

use std::fmt::Write as _;

use crate::guard::GuardSnapshot;

/// Outcome of one evaluated episode under the guard.
#[derive(Clone, Debug)]
pub struct EpisodeOutcome {
    /// Trace / workload label.
    pub trace: String,
    /// Scenario score for the episode (lower is better for both built-in
    /// scenarios: makespan hours, miss cost).
    pub score: f64,
    /// Decisions taken in the episode.
    pub steps: u64,
    /// Guard state when the episode ended.
    pub end_state: String,
}

/// Score of one tier run standalone (unguarded, no faults) over the same
/// episodes — the counterfactual the guarded score is judged against.
#[derive(Clone, Debug)]
pub struct CounterfactualScore {
    /// Tier / policy name.
    pub policy: String,
    /// Mean episode score.
    pub score: f64,
}

/// Everything a guarded evaluation run learned, ready to render.
#[derive(Clone, Debug)]
pub struct IncidentReport {
    /// Scenario name.
    pub scenario: String,
    /// Human description of the injected fault plan ("none" when clean).
    pub fault: String,
    /// Seed the run was driven with.
    pub seed: u64,
    /// Final guard evidence.
    pub snapshot: GuardSnapshot,
    /// Per-episode outcomes, evaluation order.
    pub episodes: Vec<EpisodeOutcome>,
    /// Standalone tier scores for context.
    pub counterfactuals: Vec<CounterfactualScore>,
}

/// Shortest-roundtrip float rendering shared by both output formats so the
/// same value always prints the same bytes.
fn fnum(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x:e}")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl IncidentReport {
    /// Renders the report as Markdown.
    pub fn to_markdown(&self) -> String {
        let s = &self.snapshot;
        let mut md = String::new();
        let _ = writeln!(md, "# Guard incident report — {}", self.scenario);
        let _ = writeln!(md);
        let _ = writeln!(md, "- fault plan: {}", self.fault);
        let _ = writeln!(md, "- seed: {}", self.seed);
        let _ = writeln!(md, "- decisions served: {}", s.steps);
        let _ = writeln!(
            md,
            "- final state: **{}** (serving tier {}: {})",
            s.state, s.active_tier, s.tier_names[s.active_tier]
        );
        let _ = writeln!(
            md,
            "- shadow comparisons: {} sampled, {} diverged",
            s.compared, s.diverged
        );
        let _ = writeln!(md, "- peak drift score: {}", fnum(s.drift_peak));
        let _ = writeln!(md);

        let _ = writeln!(md, "## Tier usage");
        let _ = writeln!(md);
        let _ = writeln!(md, "| tier | policy | decisions served |");
        let _ = writeln!(md, "|---|---|---|");
        for (i, name) in s.tier_names.iter().enumerate() {
            let _ = writeln!(md, "| {} | {} | {} |", i, name, s.tier_steps[i]);
        }
        let _ = writeln!(md);

        let _ = writeln!(md, "## Transitions");
        let _ = writeln!(md);
        if s.transitions.is_empty() {
            let _ = writeln!(md, "None — the guard stayed healthy throughout.");
        } else {
            let _ = writeln!(
                md,
                "| step | from | to | tier | divergence | drift | reason |"
            );
            let _ = writeln!(md, "|---|---|---|---|---|---|---|");
            for t in &s.transitions {
                let _ = writeln!(
                    md,
                    "| {} | {} | {} | {} -> {} | {} | {} | {} |",
                    t.step,
                    t.from,
                    t.to,
                    t.from_tier,
                    t.to_tier,
                    fnum(t.divergence),
                    fnum(t.drift),
                    t.reason
                );
            }
        }
        let _ = writeln!(md);

        let _ = writeln!(md, "## Episodes");
        let _ = writeln!(md);
        let _ = writeln!(md, "| trace | score | steps | end state |");
        let _ = writeln!(md, "|---|---|---|---|");
        for e in &self.episodes {
            let _ = writeln!(
                md,
                "| {} | {} | {} | {} |",
                e.trace,
                fnum(e.score),
                e.steps,
                e.end_state
            );
        }
        let _ = writeln!(md);

        if !self.counterfactuals.is_empty() {
            let _ = writeln!(md, "## Counterfactual tier scores (clean, unguarded)");
            let _ = writeln!(md);
            let _ = writeln!(md, "| policy | mean score |");
            let _ = writeln!(md, "|---|---|");
            for c in &self.counterfactuals {
                let _ = writeln!(md, "| {} | {} |", c.policy, fnum(c.score));
            }
            let _ = writeln!(md);
        }

        if !s.samples.is_empty() {
            let diverging: Vec<_> = s.samples.iter().filter(|x| x.diverged).collect();
            let _ = writeln!(
                md,
                "## Recent diverging samples ({} of {} logged)",
                diverging.len(),
                s.samples.len()
            );
            let _ = writeln!(md);
            if diverging.is_empty() {
                let _ = writeln!(md, "None in the log window.");
            } else {
                let _ = writeln!(md, "| step | primary | shadow |");
                let _ = writeln!(md, "|---|---|---|");
                for x in diverging.iter().take(20) {
                    let _ = writeln!(
                        md,
                        "| {} | {} | {} |",
                        x.step, x.primary_action, x.shadow_action
                    );
                }
            }
            let _ = writeln!(md);
        }
        md
    }

    /// Renders the report as JSON. Deterministic: fixed key order,
    /// shortest-roundtrip floats.
    pub fn to_json(&self) -> String {
        let s = &self.snapshot;
        let mut j = String::new();
        j.push('{');
        let _ = write!(j, "\"scenario\":\"{}\"", json_escape(&self.scenario));
        let _ = write!(j, ",\"fault\":\"{}\"", json_escape(&self.fault));
        let _ = write!(j, ",\"seed\":{}", self.seed);
        let _ = write!(j, ",\"steps\":{}", s.steps);
        let _ = write!(j, ",\"final_state\":\"{}\"", s.state);
        let _ = write!(j, ",\"active_tier\":{}", s.active_tier);
        let _ = write!(j, ",\"compared\":{}", s.compared);
        let _ = write!(j, ",\"diverged\":{}", s.diverged);
        let _ = write!(j, ",\"drift_peak\":{}", fnum(s.drift_peak));

        j.push_str(",\"tiers\":[");
        for (i, name) in s.tier_names.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "{{\"index\":{},\"name\":\"{}\",\"served\":{}}}",
                i,
                json_escape(name),
                s.tier_steps[i]
            );
        }
        j.push(']');

        j.push_str(",\"transitions\":[");
        for (i, t) in s.transitions.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "{{\"step\":{},\"from\":\"{}\",\"to\":\"{}\",\"from_tier\":{},\"to_tier\":{},\"divergence\":{},\"drift\":{},\"stuck_run\":{},\"reason\":\"{}\"}}",
                t.step,
                t.from,
                t.to,
                t.from_tier,
                t.to_tier,
                fnum(t.divergence),
                fnum(t.drift),
                t.stuck_run,
                t.reason
            );
        }
        j.push(']');

        j.push_str(",\"episodes\":[");
        for (i, e) in self.episodes.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "{{\"trace\":\"{}\",\"score\":{},\"steps\":{},\"end_state\":\"{}\"}}",
                json_escape(&e.trace),
                fnum(e.score),
                e.steps,
                json_escape(&e.end_state)
            );
        }
        j.push(']');

        j.push_str(",\"counterfactuals\":[");
        for (i, c) in self.counterfactuals.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "{{\"policy\":\"{}\",\"score\":{}}}",
                json_escape(&c.policy),
                fnum(c.score)
            );
        }
        j.push(']');
        j.push('}');
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{GuardSnapshot, HealthState, TransitionRecord};
    use crate::shadow::ShadowSample;

    fn report() -> IncidentReport {
        IncidentReport {
            scenario: "dorado-migration".to_string(),
            fault: "drift x3.0 from step 10".to_string(),
            seed: 42,
            snapshot: GuardSnapshot {
                state: HealthState::FallenBack,
                active_tier: 1,
                tier_names: vec!["fsm".to_string(), "gru-exact".to_string()],
                tier_steps: vec![40, 24],
                steps: 64,
                transitions: vec![TransitionRecord {
                    step: 40,
                    from: HealthState::Suspect,
                    to: HealthState::FallenBack,
                    from_tier: 0,
                    to_tier: 1,
                    divergence: 0.625,
                    drift: 4.5,
                    stuck_run: 0,
                    reason: "drift",
                }],
                compared: 30,
                diverged: 10,
                drift_peak: 4.5,
                last_divergence: 0.625,
                last_drift: 4.5,
                samples: vec![ShadowSample {
                    step: 39,
                    primary_action: 2,
                    shadow_action: 5,
                    diverged: true,
                }],
            },
            episodes: vec![EpisodeOutcome {
                trace: "trace-a".to_string(),
                score: 12.25,
                steps: 64,
                end_state: "fallen-back".to_string(),
            }],
            counterfactuals: vec![CounterfactualScore {
                policy: "fsm".to_string(),
                score: 11.5,
            }],
        }
    }

    #[test]
    fn markdown_mentions_the_essentials() {
        let md = report().to_markdown();
        assert!(md.contains("fallen-back"));
        assert!(md.contains("| 40 | suspect | fallen-back | 0 -> 1 |"));
        assert!(md.contains("trace-a"));
        assert!(md.contains("gru-exact"));
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let a = report().to_json();
        let b = report().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"final_state\":\"fallen-back\""));
        assert!(a.contains("\"reason\":\"drift\""));
        // Balanced braces/brackets (no string values contain them here).
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn float_rendering_is_stable() {
        assert_eq!(fnum(4.5), "4.5e0");
        assert_eq!(fnum(12.0), "12.0");
        assert_eq!(fnum(0.625), "6.25e-1");
    }
}
