//! A compact per-stream health summary for tiered serving state.
//!
//! [`crate::GuardedPolicy`] is thorough — shadow replay, P² drift windows,
//! hysteresis — but it costs kilobytes per stream. A serving layer that
//! wants millions of mostly-healthy streams needs a *triage* tier first:
//! a few counters that are cheap to keep, cheap to hibernate, and good
//! enough to decide *when the full guard is worth materializing*. That is
//! [`MicroHealth`]: ~20 bytes tracking three demotion precursors the full
//! guard would also catch, each a pure function of the observation stream
//! (no cross-stream state), so promotion decisions are deterministic and
//! hibernation round-trips exactly.
//!
//! The three signals mirror the full guard's evidence, coarsened:
//!
//! - **stuck input** — a run of bit-identical observations (the
//!   [`crate::DriftDetector`]'s `stuck_run`, tracked by hash instead of by
//!   stored vector);
//! - **unseen rate** — quantized codes the FSM never saw at extraction
//!   time, counted over a sliding window (the shadow tracker would see
//!   these as divergence risk);
//! - **out-of-band rate** — observations outside the baseline profile's
//!   Tukey fences (the drift detector's median-shift signal, reduced to a
//!   precomputed per-dimension interval test).

use crate::stats::BaselineProfile;

/// Thresholds for [`MicroHealth::observe`]. The defaults are deliberately
/// *more sensitive* than [`crate::GuardConfig`]'s trip points: the micro
/// tier's failure mode is a false promotion (cost: one guard
/// materialization, released again once the full guard stays healthy),
/// which is far cheaper than a false pass (cost: an unguarded degrading
/// stream until its next periodic audit).
#[derive(Clone, Copy, Debug)]
pub struct MicroConfig {
    /// Consecutive identical observations before promotion
    /// (cf. `GuardConfig::stuck_after`).
    pub stuck_after: u32,
    /// Sliding-window length, observations.
    pub window: u16,
    /// Unseen-code count within one window that trips promotion.
    pub max_unseen_per_window: u16,
    /// Out-of-band count within one window that trips promotion.
    pub max_oob_per_window: u16,
}

impl Default for MicroConfig {
    fn default() -> Self {
        Self {
            stuck_after: 48,
            window: 64,
            max_unseen_per_window: 16,
            max_oob_per_window: 16,
        }
    }
}

/// Why [`MicroHealth::observe`] asked for the full guard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MicroVerdict {
    /// Nothing suspicious; keep serving from compact state.
    Healthy,
    /// Materialize the full ladder; the payload names the tripped signal.
    Promote(&'static str),
}

/// The compact health state itself: 20 bytes, `Copy`, exhaustively
/// reconstructible from [`MicroHealth::to_parts`] — see the module docs.
///
/// Window semantics are *tumbling*, not sliding: counters reset every
/// `window` observations. That admits a rate just under the threshold
/// straddling two windows undetected — acceptable for a triage tier whose
/// backstop is the periodic full-guard audit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MicroHealth {
    last_hash: u64,
    stuck_run: u32,
    unseen_recent: u16,
    oob_recent: u16,
    pos: u16,
}

impl MicroHealth {
    /// Fresh state (no history).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one served observation in. `obs_hash` is [`obs_hash`] of the
    /// raw observation; `unseen` comes from the FSM step outcome;
    /// `out_of_band` from a [`BaselineProfile::tukey_band`] test.
    pub fn observe(
        &mut self,
        cfg: &MicroConfig,
        obs_hash: u64,
        unseen: bool,
        oob: bool,
    ) -> MicroVerdict {
        if obs_hash == self.last_hash {
            self.stuck_run = self.stuck_run.saturating_add(1);
        } else {
            self.last_hash = obs_hash;
            self.stuck_run = 0;
        }
        self.unseen_recent += unseen as u16;
        self.oob_recent += oob as u16;
        self.pos += 1;
        let verdict = if self.stuck_run >= cfg.stuck_after {
            MicroVerdict::Promote("stuck-input")
        } else if self.unseen_recent > cfg.max_unseen_per_window {
            MicroVerdict::Promote("unseen-rate")
        } else if self.oob_recent > cfg.max_oob_per_window {
            MicroVerdict::Promote("out-of-band")
        } else {
            MicroVerdict::Healthy
        };
        if self.pos >= cfg.window {
            self.pos = 0;
            self.unseen_recent = 0;
            self.oob_recent = 0;
        }
        verdict
    }

    /// Flattens to plain words for external storage; inverse of
    /// [`MicroHealth::from_parts`].
    pub fn to_parts(&self) -> (u64, u32, u16, u16, u16) {
        (
            self.last_hash,
            self.stuck_run,
            self.unseen_recent,
            self.oob_recent,
            self.pos,
        )
    }

    /// Rebuilds from [`MicroHealth::to_parts`] output, exactly.
    pub fn from_parts(parts: (u64, u32, u16, u16, u16)) -> Self {
        Self {
            last_hash: parts.0,
            stuck_run: parts.1,
            unseen_recent: parts.2,
            oob_recent: parts.3,
            pos: parts.4,
        }
    }
}

/// FNV-1a over the observation's raw bit patterns — the identity test
/// behind the stuck-input signal. Bitwise, not numeric: `-0.0` and `0.0`
/// hash differently, NaNs hash stably, matching the drift detector's
/// exact-repetition (`to_bits`) semantics.
pub fn obs_hash(obs: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in obs {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

impl BaselineProfile {
    /// Per-dimension Tukey fences `[p25 - k·IQR, p75 + k·IQR]`, the
    /// precomputed intervals behind [`MicroHealth`]'s out-of-band test.
    /// Degenerate dimensions (zero IQR) widen by the drift denominator so
    /// float jitter around a constant doesn't trip the fence.
    pub fn tukey_band(&self, k: f64) -> Vec<(f32, f32)> {
        self.dims
            .iter()
            .map(|d| {
                let iqr = (d.p75 - d.p25).max(d.denom());
                ((d.p25 - k * iqr) as f32, (d.p75 + k * iqr) as f32)
            })
            .collect()
    }
}

/// Whether any dimension of `obs` falls outside its `band` interval.
pub fn out_of_band(obs: &[f32], band: &[(f32, f32)]) -> bool {
    obs.iter()
        .zip(band)
        .any(|(v, (lo, hi))| !(*v >= *lo && *v <= *hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StreamingProfile;

    #[test]
    fn stuck_input_promotes_after_threshold() {
        let cfg = MicroConfig {
            stuck_after: 3,
            ..MicroConfig::default()
        };
        let mut h = MicroHealth::new();
        let hash = obs_hash(&[1.0, 2.0]);
        assert_eq!(h.observe(&cfg, hash, false, false), MicroVerdict::Healthy);
        assert_eq!(h.observe(&cfg, hash, false, false), MicroVerdict::Healthy);
        assert_eq!(h.observe(&cfg, hash, false, false), MicroVerdict::Healthy);
        assert_eq!(
            h.observe(&cfg, hash, false, false),
            MicroVerdict::Promote("stuck-input")
        );
        // A different observation clears the run.
        let mut h2 = h;
        assert_eq!(
            h2.observe(&cfg, obs_hash(&[9.0]), false, false),
            MicroVerdict::Healthy
        );
    }

    #[test]
    fn windowed_rates_promote_and_reset() {
        let cfg = MicroConfig {
            window: 8,
            max_unseen_per_window: 2,
            max_oob_per_window: 2,
            ..MicroConfig::default()
        };
        let mut h = MicroHealth::new();
        for i in 0..2 {
            assert_eq!(
                h.observe(&cfg, i, true, false),
                MicroVerdict::Healthy,
                "under threshold"
            );
        }
        assert_eq!(
            h.observe(&cfg, 99, true, false),
            MicroVerdict::Promote("unseen-rate")
        );
        // A full healthy window clears the tally.
        for i in 100..100 + 8 {
            h.observe(&cfg, i, false, false);
        }
        assert_eq!(h.observe(&cfg, 7, true, false), MicroVerdict::Healthy);
        // Same shape for out-of-band.
        let mut h = MicroHealth::new();
        for i in 0..2 {
            h.observe(&cfg, i, false, true);
        }
        assert_eq!(
            h.observe(&cfg, 99, false, true),
            MicroVerdict::Promote("out-of-band")
        );
    }

    #[test]
    fn parts_roundtrip_exactly() {
        let cfg = MicroConfig::default();
        let mut h = MicroHealth::new();
        for i in 0..37u64 {
            h.observe(&cfg, obs_hash(&[i as f32]), i % 5 == 0, i % 7 == 0);
        }
        let copy = MicroHealth::from_parts(h.to_parts());
        assert_eq!(copy, h);
        // And the copy continues identically.
        let mut a = h;
        let mut b = copy;
        for i in 0..200u64 {
            assert_eq!(
                a.observe(&cfg, i, i % 3 == 0, false),
                b.observe(&cfg, i, i % 3 == 0, false)
            );
        }
    }

    #[test]
    fn tukey_band_brackets_the_iqr_and_flags_outliers() {
        let mut sp = StreamingProfile::new(2);
        for i in 0..200 {
            sp.push(&[i as f32 * 0.01, 5.0]);
        }
        let profile = sp.profile();
        let band = profile.tukey_band(3.0);
        assert_eq!(band.len(), 2);
        for (d, (lo, hi)) in profile.dims.iter().zip(&band) {
            assert!((*lo as f64) < d.p25 && (*hi as f64) > d.p75);
        }
        // In-band median passes; a gross outlier does not.
        let mid = [profile.dims[0].p50 as f32, 5.0];
        assert!(!out_of_band(&mid, &band));
        assert!(out_of_band(&[1e6, 5.0], &band));
        // NaN is never inside any band.
        assert!(out_of_band(&[f32::NAN, 5.0], &band));
    }
}
