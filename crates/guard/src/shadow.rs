//! Shadow-mode bookkeeping: sampled primary-vs-reference action
//! comparisons, a sliding divergence window, and a bounded ring-buffer log.
//!
//! The guarded policy serves decisions from one tier and replays the same
//! observation stream through the other tiers in deferred batches (see
//! [`crate::GuardedPolicy`]). This module owns the *comparison* side: which
//! steps get compared (a seeded pseudo-random 1-in-`sample_period`
//! selection, deterministic per step index), the divergence rate over the
//! recent window, and the capped sample log that feeds incident reports.

use std::collections::VecDeque;

/// SplitMix64 — the workspace's standard seed-expansion hash; used here to
/// make per-step sampling a pure function of `(seed, step)`.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One logged shadow comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowSample {
    /// Global decision step the comparison belongs to.
    pub step: u64,
    /// Action the primary tier (the deployed FSM) chose.
    pub primary_action: usize,
    /// Action the shadow reference tier (the teacher net) chose.
    pub shadow_action: usize,
    /// Whether the two disagree.
    pub diverged: bool,
}

/// Sampled divergence tracking between the primary tier and its shadow
/// reference.
#[derive(Clone, Debug)]
pub struct ShadowTracker {
    sample_period: usize,
    window: u64,
    capacity: usize,
    seed: u64,
    /// Sampled comparisons within the recent window: `(step, diverged)`.
    recent: VecDeque<(u64, bool)>,
    /// Bounded log of the most recent samples (for incident reports).
    ring: VecDeque<ShadowSample>,
    compared: u64,
    diverged: u64,
}

impl ShadowTracker {
    /// Tracker sampling ~1 in `sample_period` steps, rating divergence over
    /// the last `window` steps, and logging at most `capacity` samples.
    ///
    /// # Panics
    /// Panics if `sample_period` or `window` is zero.
    pub fn new(sample_period: usize, window: usize, capacity: usize, seed: u64) -> Self {
        assert!(sample_period > 0, "sample period must be positive");
        assert!(window > 0, "divergence window must be non-empty");
        Self {
            sample_period,
            window: window as u64,
            capacity,
            seed,
            recent: VecDeque::new(),
            ring: VecDeque::new(),
            compared: 0,
            diverged: 0,
        }
    }

    /// Whether `step` is selected for comparison — a deterministic seeded
    /// pseudo-random 1-in-`sample_period` choice (period 1 samples every
    /// step).
    pub fn is_sampled(&self, step: u64) -> bool {
        self.sample_period == 1 || splitmix64(self.seed ^ step) % self.sample_period as u64 == 0
    }

    /// Records one comparison and prunes entries older than the window.
    pub fn record(&mut self, sample: ShadowSample) {
        self.compared += 1;
        if sample.diverged {
            self.diverged += 1;
        }
        self.recent.push_back((sample.step, sample.diverged));
        while let Some(&(s, _)) = self.recent.front() {
            if s + self.window <= sample.step {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(sample);
    }

    /// Divergence rate over comparisons in the window ending at `now`, or
    /// `None` when fewer than `min_samples` comparisons are available (too
    /// little evidence to act on).
    pub fn rate(&self, now: u64, min_samples: usize) -> Option<f64> {
        let floor = now.saturating_sub(self.window);
        let mut total = 0u64;
        let mut bad = 0u64;
        for &(s, d) in &self.recent {
            if s >= floor {
                total += 1;
                bad += d as u64;
            }
        }
        (total as usize >= min_samples).then(|| bad as f64 / total as f64)
    }

    /// Lifetime `(compared, diverged)` counts.
    pub fn totals(&self) -> (u64, u64) {
        (self.compared, self.diverged)
    }

    /// The logged samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &ShadowSample> {
        self.ring.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(step: u64, diverged: bool) -> ShadowSample {
        ShadowSample {
            step,
            primary_action: 0,
            shadow_action: diverged as usize,
            diverged,
        }
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_one_in_k() {
        let t = ShadowTracker::new(4, 64, 16, 7);
        let picked: Vec<u64> = (0..4000).filter(|&s| t.is_sampled(s)).collect();
        let again: Vec<u64> = (0..4000).filter(|&s| t.is_sampled(s)).collect();
        assert_eq!(picked, again);
        assert!(
            picked.len() > 700 && picked.len() < 1300,
            "expected ~1000 of 4000, got {}",
            picked.len()
        );
        // A different seed selects a different subset.
        let other = ShadowTracker::new(4, 64, 16, 8);
        let other_picked: Vec<u64> = (0..4000).filter(|&s| other.is_sampled(s)).collect();
        assert_ne!(picked, other_picked);
    }

    #[test]
    fn period_one_samples_everything() {
        let t = ShadowTracker::new(1, 8, 4, 0);
        assert!((0..100).all(|s| t.is_sampled(s)));
    }

    #[test]
    fn rate_is_windowed() {
        let mut t = ShadowTracker::new(1, 10, 100, 0);
        for s in 0..10 {
            t.record(sample(s, true));
        }
        assert_eq!(t.rate(9, 1), Some(1.0));
        for s in 10..30 {
            t.record(sample(s, false));
        }
        // The divergent prefix has aged out of the window.
        assert_eq!(t.rate(29, 1), Some(0.0));
        assert_eq!(t.totals(), (30, 10));
    }

    #[test]
    fn rate_requires_min_samples() {
        let mut t = ShadowTracker::new(1, 64, 8, 0);
        t.record(sample(0, true));
        assert_eq!(t.rate(0, 2), None);
        t.record(sample(1, true));
        assert_eq!(t.rate(1, 2), Some(1.0));
    }

    #[test]
    fn ring_is_capacity_bounded() {
        let mut t = ShadowTracker::new(1, 8, 3, 0);
        for s in 0..10 {
            t.record(sample(s, false));
        }
        let steps: Vec<u64> = t.samples().map(|s| s.step).collect();
        assert_eq!(steps, vec![7, 8, 9]);
    }
}
