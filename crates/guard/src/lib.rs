//! Guardrail layer for deployed learned heuristics.
//!
//! The extraction pipeline (train → quantize → FSM) produces a tiny
//! interpretable policy, but a deployed FSM is only trustworthy on inputs
//! that look like its training distribution. This crate wraps any
//! [`lahd_fsm::VecPolicy`] ladder in a guarded execution harness with three
//! cooperating mechanisms:
//!
//! - **Shadow mode** ([`ShadowTracker`]): the primary tier serves on the
//!   hot path while the reference net replays the same observation stream
//!   in deferred batches; sampled action comparisons feed a windowed
//!   divergence rate.
//! - **Drift detection** ([`DriftDetector`], [`BaselineProfile`]): per-
//!   dimension streaming statistics of recent observations scored against a
//!   training-time baseline profile stamped into the artifact directory.
//! - **Automatic fallback** ([`GuardedPolicy`]): a hysteresis state machine
//!   (Healthy → Suspect → FallenBack → Recovering) that demotes serving
//!   down the tier ladder when the signals trip, escalates if the fallback
//!   also misbehaves, and restores the primary once the signals clear.
//!
//! Everything is deterministic under fixed seeds and every transition is
//! recorded; [`IncidentReport`] renders the evidence as Markdown or JSON.
//!
//! For deployments with very many streams, [`MicroHealth`] is the compact
//! triage tier in front of all of the above: ~20 bytes of per-stream
//! counters that decide *when* the full guarded ladder is worth
//! materializing at all (see the serving layer's tiered stream state).
//!
//! The crate is policy-agnostic: it depends only on the [`VecPolicy`]
//! trait, so any scenario's ladder (FSM → quantized net → exact net →
//! constant baseline) can be guarded. `lahd-core` wires it to real
//! artifacts and scenarios in its `guard_eval` module.
//!
//! [`VecPolicy`]: lahd_fsm::VecPolicy

mod drift;
mod guard;
mod micro;
mod report;
mod shadow;
mod stats;

pub use drift::{DriftDetector, DriftScore};
pub use guard::{GuardConfig, GuardSnapshot, GuardedPolicy, HealthState, TransitionRecord};
pub use micro::{obs_hash, out_of_band, MicroConfig, MicroHealth, MicroVerdict};
pub use report::{CounterfactualScore, EpisodeOutcome, IncidentReport};
pub use shadow::{ShadowSample, ShadowTracker};
pub use stats::{
    exact_quantile, read_profile, write_profile, BaselineProfile, DimProfile, P2Quantile,
    ProfileError, StreamingProfile, Welford,
};
