//! Runtime drift detection: a sliding observation window scored against a
//! training-time [`BaselineProfile`].
//!
//! The detector keeps the last `window` observations in a ring buffer and,
//! on demand, computes per-dimension shift scores in units of the baseline's
//! normalisation denominator ([`DimProfile::denom`]): shift of the window
//! mean, shift of the window standard deviation (catches zero-mean noise
//! injection), and shift of the window median against the baseline median
//! normalised by the inter-quartile range (robust to single outliers). The
//! reported [`DriftScore`] is the maximum over dimensions and components —
//! one number the guard state machine thresholds with hysteresis.
//!
//! A separate stuck-input signal counts consecutive *identical* observation
//! vectors: a frozen sensor keeps every window statistic plausible, so no
//! distributional score can see it, but exact repetition at vector
//! granularity is vanishingly unlikely under any live workload.

use crate::stats::{exact_quantile, BaselineProfile};

/// Result of scoring the current window against the baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriftScore {
    /// Max over dimensions of all shift components (the thresholded value).
    pub score: f64,
    /// Dimension index attaining the maximum.
    pub worst_dim: usize,
    /// Max mean-shift component.
    pub mean_shift: f64,
    /// Max std-shift component.
    pub std_shift: f64,
    /// Max median-shift component.
    pub median_shift: f64,
    /// Observations currently in the window.
    pub samples: usize,
    /// Length of the current run of identical consecutive observations.
    pub stuck_run: usize,
}

/// Sliding-window drift detector over observation vectors.
#[derive(Clone, Debug)]
pub struct DriftDetector {
    baseline: BaselineProfile,
    window: usize,
    /// Ring buffer of the last `window` observations, flattened.
    ring: Vec<f32>,
    head: usize,
    filled: usize,
    last_obs: Vec<f32>,
    stuck_run: usize,
    total: u64,
}

impl DriftDetector {
    /// Detector comparing windows of `window` observations against
    /// `baseline`.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(baseline: BaselineProfile, window: usize) -> Self {
        assert!(window > 0, "drift window must be non-empty");
        let dim = baseline.dim();
        Self {
            baseline,
            window,
            ring: vec![0.0; window * dim],
            head: 0,
            filled: 0,
            last_obs: Vec::new(),
            stuck_run: 0,
            total: 0,
        }
    }

    /// The baseline being compared against.
    pub fn baseline(&self) -> &BaselineProfile {
        &self.baseline
    }

    /// Consumes one observation.
    ///
    /// # Panics
    /// Panics if `obs` does not match the baseline dimensionality.
    pub fn observe(&mut self, obs: &[f32]) {
        let dim = self.baseline.dim();
        assert_eq!(obs.len(), dim, "observation dimension changed");
        if self.last_obs.as_slice() == obs {
            self.stuck_run += 1;
        } else {
            self.stuck_run = 0;
            self.last_obs.clear();
            self.last_obs.extend_from_slice(obs);
        }
        self.ring[self.head * dim..(self.head + 1) * dim].copy_from_slice(obs);
        self.head = (self.head + 1) % self.window;
        self.filled = (self.filled + 1).min(self.window);
        self.total += 1;
    }

    /// Total observations consumed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Scores the current window. Cheap enough to call at evaluation
    /// boundaries (it sorts one `window`-length scratch per dimension), not
    /// meant for every decision.
    pub fn score(&self) -> DriftScore {
        let dim = self.baseline.dim();
        let mut out = DriftScore {
            samples: self.filled,
            stuck_run: self.stuck_run,
            ..DriftScore::default()
        };
        if self.filled < 2 {
            return out;
        }
        let n = self.filled;
        let mut scratch = vec![0.0f64; n];
        for d in 0..dim {
            for (slot, row) in scratch.iter_mut().zip(0..n) {
                *slot = self.ring[row * dim + d] as f64;
            }
            let base = &self.baseline.dims[d];
            let denom = base.denom();

            let mean = scratch.iter().sum::<f64>() / n as f64;
            let var = scratch.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            let mean_shift = (mean - base.mean).abs() / denom;
            let std_shift = (var.sqrt() - base.std).abs() / denom;

            scratch.sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
            let median = exact_quantile(&scratch, 0.5);
            let iqr_denom = (base.p75 - base.p25).max(denom);
            let median_shift = (median - base.p50).abs() / iqr_denom;

            out.mean_shift = out.mean_shift.max(mean_shift);
            out.std_shift = out.std_shift.max(std_shift);
            out.median_shift = out.median_shift.max(median_shift);
            let dim_score = mean_shift.max(std_shift).max(median_shift);
            if dim_score > out.score {
                out.score = dim_score;
                out.worst_dim = d;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StreamingProfile;

    /// Deterministic in-distribution generator: a low-discrepancy walk.
    fn sample(i: u64, d: usize) -> f32 {
        let x = ((i as f64 + 1.0) * (d as f64 + 1.0) * 0.618_033_988_749_895).fract();
        (x * 0.2 + 0.4) as f32 // values in [0.4, 0.6)
    }

    fn baseline(dim: usize) -> BaselineProfile {
        let mut sp = StreamingProfile::new(dim);
        for i in 0..4096u64 {
            let obs: Vec<f32> = (0..dim).map(|d| sample(i, d)).collect();
            sp.push(&obs);
        }
        sp.profile()
    }

    #[test]
    fn in_distribution_window_scores_low() {
        let mut det = DriftDetector::new(baseline(4), 64);
        for i in 0..256u64 {
            let obs: Vec<f32> = (0..4).map(|d| sample(i, d)).collect();
            det.observe(&obs);
        }
        let s = det.score();
        assert!(s.score < 1.0, "clean stream scored {s:?}");
        assert_eq!(s.stuck_run, 0);
    }

    #[test]
    fn shifted_window_scores_high() {
        let mut det = DriftDetector::new(baseline(4), 64);
        for i in 0..256u64 {
            let obs: Vec<f32> = (0..4).map(|d| sample(i, d) * 3.0).collect();
            det.observe(&obs);
        }
        let s = det.score();
        assert!(s.score > 3.0, "shifted stream scored only {s:?}");
        assert!(s.mean_shift > 3.0);
    }

    #[test]
    fn zero_mean_noise_trips_the_std_component() {
        let mut det = DriftDetector::new(baseline(4), 64);
        for i in 0..256u64 {
            // Symmetric ±0.5 contamination: window mean barely moves.
            let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
            let obs: Vec<f32> = (0..4).map(|d| sample(i, d) + noise).collect();
            det.observe(&obs);
        }
        let s = det.score();
        assert!(s.std_shift > 3.0, "noise scored only {s:?}");
    }

    #[test]
    fn stuck_run_counts_identical_vectors() {
        let mut det = DriftDetector::new(baseline(4), 64);
        let frozen: Vec<f32> = (0..4).map(|d| sample(7, d)).collect();
        for _ in 0..10 {
            det.observe(&frozen);
        }
        assert_eq!(det.score().stuck_run, 9);
        det.observe(&[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(det.score().stuck_run, 0);
    }

    #[test]
    fn recovery_drains_with_the_window() {
        let mut det = DriftDetector::new(baseline(4), 32);
        for i in 0..64u64 {
            let obs: Vec<f32> = (0..4).map(|d| sample(i, d) * 3.0).collect();
            det.observe(&obs);
        }
        assert!(det.score().score > 3.0);
        for i in 0..32u64 {
            let obs: Vec<f32> = (0..4).map(|d| sample(i, d)).collect();
            det.observe(&obs);
        }
        assert!(
            det.score().score < 1.0,
            "window should forget the fault: {:?}",
            det.score()
        );
    }
}
