//! # LAHD — Learning-Aided Heuristics Design for Storage Systems
//!
//! A from-scratch Rust reproduction of *Learning-Aided Heuristics Design
//! for Storage System* (Tang, Lu, Li, Chen, Yuan, Zeng — SIGMOD 2021):
//! train a recurrent deep-RL agent to migrate CPU cores between the
//! NORMAL/KV/RV levels of a Dorado-V6-style storage array, then extract a
//! human-readable finite state machine from it with quantized bottleneck
//! networks, so the deployed policy is a white-box artifact.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `lahd-tensor` | dense matrices, softmax, statistics |
//! | [`nn`] | `lahd-nn` | tape autograd, GRU/Linear, Adam |
//! | [`sim`] | `lahd-sim` | the storage simulators (Dorado migration, readahead) |
//! | [`workload`] | `lahd-workload` | Vdbench-style trace synthesis |
//! | [`rl`] | `lahd-rl` | recurrent A2C + curriculum learning |
//! | [`qbn`] | `lahd-qbn` | quantized bottleneck networks |
//! | [`fsm`] | `lahd-fsm` | FSM extraction, baselines, interpretation |
//! | [`guard`] | `lahd-guard` | shadow execution, drift detection, policy fallback |
//! | [`core`] | `lahd-core` | scenarios, the end-to-end pipeline, evaluation |
//! | [`serve`] | `lahd-serve` | fault-tolerant sharded decision-serving daemon |
//!
//! See `examples/` for runnable walkthroughs and `crates/bench` for the
//! harnesses that regenerate every figure of the paper.

pub use lahd_core as core;
pub use lahd_fsm as fsm;
pub use lahd_guard as guard;
pub use lahd_nn as nn;
pub use lahd_qbn as qbn;
pub use lahd_rl as rl;
pub use lahd_serve as serve;
pub use lahd_sim as sim;
pub use lahd_tensor as tensor;
pub use lahd_workload as workload;
